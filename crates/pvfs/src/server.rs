//! The data server: the `pvfs2-server` daemon analogue.
//!
//! Each server owns a primary device (disk behind CFQ — or SSD behind
//! Noop in the "SSD-only" configuration of Fig. 10), an optional SSD
//! cache device (Noop), a local file system, and a [`CachePolicy`]. The
//! server is a passive state machine: the cluster event loop feeds it
//! sub-request arrivals and device completions; it answers with device
//! actions to schedule and jobs that finished.
//!
//! I/O for one sub-request may span several device extents (file-system
//! extents, or SSD-log extents); the server tracks them as *groups* and
//! completes the upper-level work item when the whole group is done.
//! Besides client jobs, groups are used for post-read cache admissions
//! and the two phases of writeback (SSD read → disk write).

use crate::policy::{
    CachePolicy, EntryId, FlushId, FlushOp, LogCorruption, Placement, RestartReport,
};
use crate::proto::SubRequest;
use ibridge_des::fxhash::FxHashMap as HashMap;
use ibridge_des::{SimDuration, SimTime};
use ibridge_device::{bytes_to_sectors, DiskModel, DiskProfile, IoDir, SsdModel, SsdProfile};
use ibridge_iosched::{
    Action, ActionList, AnySched, BlockDevice, BlockRequest, Cfq, CfqConfig, Deadline, Noop,
    StorageDev, StreamId,
};
use ibridge_localfs::{Extent, FileHandle, FsConfig, LocalFs};

/// Identifies a client job (one sub-request being served).
pub type JobId = u64;

/// Stream id used for cache-admission writes (a background kernel-thread
/// analogue).
pub const ADMISSION_STREAM: StreamId = u64::MAX - 1;
/// Stream id used for writeback I/O (the flusher-thread analogue).
pub const FLUSH_STREAM: StreamId = u64::MAX;

/// Which of the server's block devices an action belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevKind {
    /// The device holding the datafiles (disk, or SSD in SSD-only mode).
    Primary,
    /// The iBridge SSD cache.
    Cache,
}

/// Which I/O scheduler fronts the primary disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskSched {
    /// CFQ — the paper's testbed configuration.
    #[default]
    Cfq,
    /// Deadline elevator (scheduler-comparison ablations).
    Deadline,
    /// Plain FIFO with merging.
    Noop,
}

/// Static per-server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Disk model parameters.
    pub disk: DiskProfile,
    /// SSD model parameters (cache device, or primary in SSD-only mode).
    pub ssd: SsdProfile,
    /// Scheduler for the primary disk.
    pub disk_sched: DiskSched,
    /// Device queue depth of the primary disk (NCQ). 1 disables
    /// device-side reordering.
    pub ncq_depth: usize,
    /// CFQ parameters for the disk.
    pub cfq: CfqConfig,
    /// Local file system parameters.
    pub fs: FsConfig,
    /// Use an SSD as the primary device (Fig. 10's "SSD-only").
    pub primary_is_ssd: bool,
    /// Attach an SSD cache device (required for iBridge policies).
    pub with_cache_dev: bool,
    /// Per-sub-request server CPU cost (request decoding, Trove/BMI
    /// bookkeeping); serialises on one core.
    pub op_overhead: SimDuration,
    /// Maximum bytes flushed per writeback round.
    pub writeback_batch: u64,
    /// Kernel-readahead model: a disk read starting within this many
    /// bytes after the datafile's current read cursor is extended
    /// backwards to the cursor, filling the hole (this is what turns
    /// iBridge's fragment-holes into the large sequential dispatches of
    /// Fig. 5). Zero disables readahead.
    pub ra_fill: u64,
    /// Page-cache budget for readahead bytes, per datafile.
    pub ra_budget: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            disk: DiskProfile::hp_mm0500(),
            ssd: SsdProfile::hp_mk0120(),
            disk_sched: DiskSched::Cfq,
            ncq_depth: 1,
            cfq: CfqConfig::default(),
            fs: FsConfig::default(),
            primary_is_ssd: false,
            with_cache_dev: false,
            op_overhead: SimDuration::from_micros(150),
            writeback_batch: 4 << 20,
            ra_fill: 64 * 1024,
            ra_budget: 8 << 20,
        }
    }
}

/// Per-datafile kernel-readahead state: a read cursor plus the ranges
/// read beyond what clients asked for (a minimal page-cache model, large
/// enough to make hole-filling useful and bounded by `ra_budget`).
#[derive(Debug, Default)]
struct ReadAhead {
    cursor: u64,
    /// Prefetched byte ranges, disjoint, keyed by start offset.
    prefetched: std::collections::BTreeMap<u64, u64>,
    bytes: u64,
}

impl ReadAhead {
    /// True when `[offset, offset+len)` is fully inside one prefetched
    /// range.
    fn covered(&self, offset: u64, len: u64) -> bool {
        match self.prefetched.range(..=offset).next_back() {
            Some((&start, &l)) => offset + len <= start + l,
            None => false,
        }
    }

    /// Records `[offset, offset+len)` as prefetched, merging with any
    /// adjacent or overlapping ranges, and enforces the byte budget by
    /// dropping the lowest (oldest) ranges.
    fn record(&mut self, offset: u64, len: u64, budget: u64) {
        if len == 0 {
            return;
        }
        let mut new_start = offset;
        let mut new_end = offset + len;
        if let Some((&s, &l)) = self.prefetched.range(..=new_start).next_back() {
            if s + l >= new_start {
                new_start = s;
                new_end = new_end.max(s + l);
                self.prefetched.remove(&s);
                self.bytes -= l;
            }
        }
        while let Some((&s, &l)) = self.prefetched.range(new_start..).next() {
            if s > new_end {
                break;
            }
            new_end = new_end.max(s + l);
            self.prefetched.remove(&s);
            self.bytes -= l;
        }
        self.prefetched.insert(new_start, new_end - new_start);
        self.bytes += new_end - new_start;
        while self.bytes > budget {
            let (&start, &l) = self
                .prefetched
                .iter()
                .next()
                .expect("positive bytes implies ranges");
            self.prefetched.remove(&start);
            self.bytes -= l;
        }
    }
}

#[derive(Debug)]
struct JobState {
    sub: SubRequest,
    admit: bool,
    served_at_disk: bool,
    /// When the sub-request entered device submission (for the
    /// observability job span/latency).
    #[cfg_attr(not(feature = "obs"), allow(dead_code))]
    started: SimTime,
}

/// One device segment of a group.
#[derive(Debug, Clone, Copy)]
struct SegSpec {
    dir: IoDir,
    extent: Extent,
    fua: bool,
    rmw_edges: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKind {
    Job(JobId),
    Admission(EntryId),
    FlushRead(FlushId),
    FlushWrite(FlushId),
}

/// One slab slot holding a (possibly retired) completion group. The
/// group's identity is `(slot, gen)` packed into the block-request tag;
/// bumping `gen` on retirement invalidates stale tags without any map
/// lookups — the slab/generation pattern of the DES calendar.
#[derive(Debug)]
struct GroupSlot {
    gen: u32,
    pending: u32,
    kind: GroupKind,
    /// Which device the group's segments run on — needed to retire
    /// cache-bound groups when the SSD device is lost.
    dev: DevKind,
}

/// Packs a slab slot and its generation into a block-request tag.
fn pack_group(slot: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(slot)
}

/// Inverse of [`pack_group`].
fn unpack_group(tag: u64) -> (u32, u32) {
    (tag as u32, (tag >> 32) as u32)
}

/// What the cluster must do after poking a server.
#[derive(Debug, Default)]
pub struct ServerOut {
    /// Device actions to schedule, tagged with the device they concern.
    pub dev_actions: Vec<(DevKind, Action)>,
    /// Jobs whose sub-request completed (replies can be sent).
    pub done_jobs: Vec<JobId>,
}

impl ServerOut {
    fn extend_dev(&mut self, kind: DevKind, actions: ActionList) {
        self.dev_actions
            .extend(actions.into_iter().map(|a| (kind, a)));
    }

    /// Empties both lists, keeping their capacity — the event loop reuses
    /// one `ServerOut` across calendar events so the steady state never
    /// allocates.
    pub fn clear(&mut self) {
        self.dev_actions.clear();
        self.done_jobs.clear();
    }
}

/// One data server.
#[derive(Debug)]
pub struct DataServer {
    id: usize,
    primary: BlockDevice,
    cache: Option<BlockDevice>,
    fs: LocalFs,
    policy: Box<dyn CachePolicy>,
    cfg: ServerConfig,
    cpu_free: SimTime,
    jobs: HashMap<JobId, JobState>,
    /// Completion-group slab; retired slots are recycled via `free_groups`.
    group_slots: Vec<GroupSlot>,
    free_groups: Vec<u32>,
    live_groups: usize,
    /// Reusable per-call segment buffer (never shrinks).
    seg_scratch: Vec<SegSpec>,
    flushes: HashMap<FlushId, FlushOp>,
    ra: HashMap<FileHandle, ReadAhead>,
    ra_hits: u64,
    ra_bytes: u64,
    /// The cache SSD died (fault injection); restarts must not
    /// resurrect it.
    cache_lost: bool,
}

/// Builds the primary block device described by `cfg`.
fn make_primary(cfg: &ServerConfig) -> BlockDevice {
    if cfg.primary_is_ssd {
        BlockDevice::new(
            StorageDev::Ssd(SsdModel::new(cfg.ssd.clone())),
            AnySched::Noop(Noop::default()),
        )
    } else {
        let sched = match cfg.disk_sched {
            DiskSched::Cfq => AnySched::Cfq(Cfq::new(cfg.cfq.clone())),
            DiskSched::Deadline => AnySched::Deadline(Deadline::new(cfg.cfq.max_merge_sectors)),
            DiskSched::Noop => AnySched::Noop(Noop::new(cfg.cfq.max_merge_sectors)),
        };
        BlockDevice::with_ncq(
            StorageDev::Disk(DiskModel::new(cfg.disk.clone())),
            sched,
            cfg.ncq_depth,
        )
    }
}

/// Builds the cache block device described by `cfg`, if configured.
fn make_cache(cfg: &ServerConfig) -> Option<BlockDevice> {
    cfg.with_cache_dev.then(|| {
        BlockDevice::new(
            StorageDev::Ssd(SsdModel::new(cfg.ssd.clone())),
            AnySched::Noop(Noop::default()),
        )
    })
}

impl DataServer {
    /// Creates a server with the given policy.
    pub fn new(id: usize, cfg: ServerConfig, policy: Box<dyn CachePolicy>) -> Self {
        let primary = make_primary(&cfg);
        let cache = make_cache(&cfg);
        let fs_capacity = if cfg.primary_is_ssd {
            cfg.ssd.capacity_sectors
        } else {
            cfg.disk.capacity_sectors
        };
        let mut srv = DataServer {
            id,
            primary,
            cache,
            fs: LocalFs::new(fs_capacity, cfg.fs.clone()),
            policy,
            cfg,
            cpu_free: SimTime::ZERO,
            jobs: HashMap::default(),
            group_slots: Vec::new(),
            free_groups: Vec::new(),
            live_groups: 0,
            seg_scratch: Vec::new(),
            flushes: HashMap::default(),
            ra: HashMap::default(),
            ra_hits: 0,
            ra_bytes: 0,
            cache_lost: false,
        };
        srv.obs_label_devices();
        srv
    }

    /// Labels this server's devices for observability output: trace node
    /// = server id + 1, lane 1 = primary device, lane 2 = cache device.
    fn obs_label_devices(&mut self) {
        let node = (self.id as u16).saturating_add(1);
        self.primary.set_obs_label(node, 1);
        if let Some(c) = self.cache.as_mut() {
            c.set_obs_label(node, 2);
        }
    }

    /// Readahead page-cache hits served without any device I/O:
    /// `(count, bytes)`.
    pub fn readahead_hits(&self) -> (u64, u64) {
        (self.ra_hits, self.ra_bytes)
    }

    /// Server index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The primary block device (for stats/tracing).
    pub fn primary(&self) -> &BlockDevice {
        &self.primary
    }

    /// The cache block device, if configured.
    pub fn cache(&self) -> Option<&BlockDevice> {
        self.cache.as_ref()
    }

    /// The cache policy (for stats).
    pub fn policy(&self) -> &dyn CachePolicy {
        self.policy.as_ref()
    }

    /// Mutable policy access (broadcast delivery).
    pub fn policy_mut(&mut self) -> &mut dyn CachePolicy {
        self.policy.as_mut()
    }

    /// The local file system (for preallocation at setup).
    pub fn fs_mut(&mut self) -> &mut LocalFs {
        &mut self.fs
    }

    /// Clears dispatch traces on all devices (skip warm-up).
    pub fn reset_tracers(&mut self) {
        self.primary.reset_tracer();
        if let Some(c) = &mut self.cache {
            c.reset_tracer();
        }
    }

    /// Per-run reset: clears dispatch traces and drops the page cache /
    /// readahead state (the paper flushes system buffer caches before
    /// each run). SSD cache contents deliberately survive.
    pub fn prepare_run(&mut self) {
        self.reset_tracers();
        self.ra.clear();
        self.ra_hits = 0;
        self.ra_bytes = 0;
    }

    /// Serialises the per-request CPU cost: returns when the sub-request
    /// can start executing.
    pub fn cpu_admit(&mut self, now: SimTime) -> SimTime {
        let start = self.cpu_free.max(now);
        self.cpu_free = start + self.cfg.op_overhead;
        self.cpu_free
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_group(
        &mut self,
        now: SimTime,
        kind: GroupKind,
        dev: DevKind,
        dir: IoDir,
        extents: &[Extent],
        stream: StreamId,
        fua: bool,
        out: &mut ServerOut,
    ) {
        let mut parts = std::mem::take(&mut self.seg_scratch);
        parts.clear();
        parts.extend(extents.iter().map(|&e| SegSpec {
            dir,
            extent: e,
            fua,
            rmw_edges: 0,
        }));
        self.submit_mixed_group(now, kind, dev, &parts, stream, out);
        self.seg_scratch = parts;
    }

    /// Submits a group of per-segment specs (direction/FUA/RMW may vary).
    /// Every segment's block request carries the group's packed
    /// `(slot, gen)` handle as its tag, so completions need no
    /// segment-to-group map at all.
    fn submit_mixed_group(
        &mut self,
        now: SimTime,
        kind: GroupKind,
        dev: DevKind,
        parts: &[SegSpec],
        stream: StreamId,
        out: &mut ServerOut,
    ) {
        assert!(!parts.is_empty(), "empty extent list for {kind:?}");
        let slot = match self.free_groups.pop() {
            Some(slot) => slot,
            None => {
                assert!(
                    self.group_slots.len() < u32::MAX as usize,
                    "group slab full"
                );
                self.group_slots.push(GroupSlot {
                    gen: 0,
                    pending: 0,
                    kind,
                    dev,
                });
                (self.group_slots.len() - 1) as u32
            }
        };
        let gs = &mut self.group_slots[slot as usize];
        gs.kind = kind;
        gs.pending = parts.len() as u32;
        gs.dev = dev;
        let handle = pack_group(slot, gs.gen);
        self.live_groups += 1;
        for &SegSpec {
            dir,
            extent: e,
            fua,
            rmw_edges,
        } in parts
        {
            let mut req = BlockRequest::new(dir, e.lbn, e.sectors, stream, now, handle)
                .with_rmw_edges(rmw_edges);
            if fua {
                req = req.with_fua();
            }
            let actions = match dev {
                DevKind::Primary => self.primary.submit(now, req),
                DevKind::Cache => self
                    .cache
                    .as_mut()
                    .expect("cache device not configured")
                    .submit(now, req),
            };
            out.extend_dev(dev, actions);
        }
    }

    /// Executes a sub-request (after its CPU admission delay).
    ///
    /// `stream` identifies the issuing client process for CFQ.
    ///
    /// # Panics
    ///
    /// Panics if a read touches a range that was never allocated — the
    /// experiment setup must preallocate data sets, mirroring the
    /// paper's "a 10 GB file is accessed" methodology.
    pub fn exec_subreq(
        &mut self,
        now: SimTime,
        job: JobId,
        stream: StreamId,
        sub: SubRequest,
        out: &mut ServerOut,
    ) {
        let block_bytes = self.cfg.fs.block_sectors * ibridge_localfs::SECTOR_SIZE;
        // Read-modify-write: a write whose edges are not block-aligned
        // must first read the partially-overwritten blocks when they hold
        // prior data that is not in the page cache — the block-level
        // penalty of unaligned access. iBridge's SSD log is byte-granular
        // and pays none of this.
        let mut rmw_edges: u8 = 0;
        if sub.dir.is_write() {
            // At most two partial edges (first and last block).
            let mut edge_blocks = [0u64; 2];
            let mut n_edges = 0;
            if !sub.offset.is_multiple_of(block_bytes) {
                edge_blocks[n_edges] = sub.offset / block_bytes;
                n_edges += 1;
            }
            let end = sub.offset + sub.len;
            // Skip the end edge only when it is the same block as an
            // actually-recorded start edge (a sub-block write).
            if !end.is_multiple_of(block_bytes)
                && (n_edges == 0 || end / block_bytes != edge_blocks[0])
            {
                edge_blocks[n_edges] = end / block_bytes;
                n_edges += 1;
            }
            for &block in &edge_blocks[..n_edges] {
                let allocated = self
                    .fs
                    .map_range(sub.file, block * block_bytes, block_bytes)
                    .is_ok();
                let warm = self
                    .ra
                    .get(&sub.file)
                    .is_some_and(|ra| ra.covered(block * block_bytes, block_bytes));
                if allocated && !warm {
                    rmw_edges += 1;
                }
            }
            // The written (and RMW-read) bytes populate the page cache.
            let budget = self.cfg.ra_budget;
            let cache_start = sub.offset / block_bytes * block_bytes;
            let cache_len = end.div_ceil(block_bytes) * block_bytes - cache_start;
            self.ra
                .entry(sub.file)
                .or_default()
                .record(cache_start, cache_len, budget);
            let first = sub.offset / block_bytes;
            let last = (sub.offset + sub.len - 1) / block_bytes;
            self.fs
                .ensure_allocated(sub.file, first, last - first + 1)
                .expect("server device out of space");
        }
        let extents = self
            .fs
            .map_range(sub.file, sub.offset, sub.len)
            .unwrap_or_else(|e| {
                panic!(
                    "server {}: reading unallocated data ({e}); preallocate the \
                     experiment files first",
                    self.id
                )
            });
        // Page-cache hit on previously readahead bytes: no device I/O.
        if sub.dir.is_read() {
            let covered = self
                .ra
                .get(&sub.file)
                .is_some_and(|ra| ra.covered(sub.offset, sub.len));
            if covered {
                self.ra_hits += 1;
                self.ra_bytes += sub.len;
                out.done_jobs.push(job);
                return;
            }
        }
        let disk_lbn = extents[0].lbn;
        let placement = self.policy.place(now, &sub, disk_lbn);
        match placement {
            Placement::Disk { admit_after_read } => {
                // Kernel readahead: extend a near-cursor read backwards
                // to the cursor, filling small holes so the disk sees a
                // sequential stream.
                let mut extents = extents;
                if sub.dir.is_read() && self.cfg.ra_fill > 0 {
                    let budget = self.cfg.ra_budget;
                    let fill = self.cfg.ra_fill;
                    let ra = self.ra.entry(sub.file).or_default();
                    let start = if ra.cursor > 0
                        && sub.offset >= ra.cursor
                        && sub.offset - ra.cursor <= fill
                    {
                        ra.cursor
                    } else {
                        sub.offset
                    };
                    if start < sub.offset {
                        // The hole may be unallocated (e.g. never written
                        // to disk); only fill when it maps.
                        if let Ok(ext) =
                            self.fs
                                .map_range(sub.file, start, sub.offset + sub.len - start)
                        {
                            ra.record(start, sub.offset - start, budget);
                            extents = ext;
                        }
                    }
                    // The read's own bytes enter the page cache too.
                    ra.record(sub.offset, sub.len, budget);
                    ra.cursor = ra.cursor.max(sub.offset + sub.len);
                }
                // TroveSyncData: client writes are flush barriers; the
                // first segment carries the RMW edge penalty.
                let dir = sub.dir;
                let fua = dir.is_write();
                let mut parts = std::mem::take(&mut self.seg_scratch);
                parts.clear();
                parts.extend(extents.iter().enumerate().map(|(i, &e)| SegSpec {
                    dir,
                    extent: e,
                    fua,
                    rmw_edges: if i == 0 { rmw_edges } else { 0 },
                }));
                self.jobs.insert(
                    job,
                    JobState {
                        sub,
                        admit: admit_after_read,
                        served_at_disk: true,
                        started: now,
                    },
                );
                self.submit_mixed_group(
                    now,
                    GroupKind::Job(job),
                    DevKind::Primary,
                    &parts,
                    stream,
                    out,
                );
                self.seg_scratch = parts;
            }
            Placement::Ssd {
                extents: log_extents,
            } => {
                let dir = sub.dir;
                self.jobs.insert(
                    job,
                    JobState {
                        sub,
                        admit: false,
                        served_at_disk: false,
                        started: now,
                    },
                );
                self.submit_group(
                    now,
                    GroupKind::Job(job),
                    DevKind::Cache,
                    dir,
                    &log_extents,
                    stream,
                    false,
                    out,
                );
            }
        }
    }

    /// Records the completed job for observability: per-class and
    /// per-server latency metrics plus a `srv:job:*` span on the serving
    /// device's lane. Read-only; one atomic load when collection is off.
    #[cfg(feature = "obs")]
    fn observe_job_done(&self, now: SimTime, st: &JobState, job: JobId) {
        use crate::proto::ReqClass;
        use ibridge_obs::metrics::{self, Phase, SubClass};
        if !ibridge_obs::active() {
            return;
        }
        let d = (now - st.started).as_nanos();
        if ibridge_obs::metrics_on() {
            let class = match st.sub.class {
                ReqClass::Fragment { .. } => SubClass::Fragment,
                ReqClass::Random => SubClass::Random,
                ReqClass::Bulk => SubClass::Bulk,
            };
            metrics::record_phase(
                if st.served_at_disk {
                    Phase::SrvJobDisk
                } else {
                    Phase::SrvJobSsd
                },
                d,
            );
            metrics::record_sub(self.id as u16, class, st.served_at_disk, d, st.sub.len);
        }
        if ibridge_obs::tracing_on() {
            ibridge_obs::trace::record(ibridge_obs::Span {
                ts_ns: st.started.as_nanos(),
                dur_ns: d,
                node: ibridge_obs::trace::server_node(self.id),
                lane: if st.served_at_disk { 1 } else { 2 },
                name: if st.served_at_disk {
                    "srv:job:disk"
                } else {
                    "srv:job:ssd"
                },
                id: job,
                aux: st.sub.len,
            });
        }
    }

    fn handle_group_done(&mut self, now: SimTime, kind: GroupKind, out: &mut ServerOut) {
        match kind {
            GroupKind::Job(job) => {
                let st = self.jobs.remove(&job).expect("unknown job");
                if st.admit && st.sub.dir.is_read() && st.served_at_disk {
                    if let Some((entry, extents)) = self.policy.read_admission(now, &st.sub) {
                        self.submit_group(
                            now,
                            GroupKind::Admission(entry),
                            DevKind::Cache,
                            IoDir::Write,
                            &extents,
                            ADMISSION_STREAM,
                            false,
                            out,
                        );
                    }
                }
                #[cfg(feature = "obs")]
                self.observe_job_done(now, &st, job);
                out.done_jobs.push(job);
            }
            GroupKind::Admission(entry) => {
                self.policy.admission_complete(now, entry);
            }
            GroupKind::FlushRead(flush) => {
                // The op is done with its SSD extents once the log read
                // has finished; take it out instead of cloning it.
                let op = self.flushes.remove(&flush).expect("unknown flush");
                let extents = self
                    .fs
                    .map_range(op.file, op.offset, op.len)
                    .expect("flushing data whose home blocks vanished");
                // Writeback of a byte range pays RMW for its cold partial
                // block edges like any other write.
                let block_bytes = self.cfg.fs.block_sectors * ibridge_localfs::SECTOR_SIZE;
                let mut rmw_edges: u8 = 0;
                for edge in [op.offset, op.offset + op.len] {
                    if edge % block_bytes != 0 {
                        let block = edge / block_bytes;
                        let warm = self
                            .ra
                            .get(&op.file)
                            .is_some_and(|ra| ra.covered(block * block_bytes, block_bytes));
                        if !warm {
                            rmw_edges += 1;
                        }
                    }
                }
                let mut parts = std::mem::take(&mut self.seg_scratch);
                parts.clear();
                parts.extend(extents.iter().enumerate().map(|(i, &e)| SegSpec {
                    dir: IoDir::Write,
                    extent: e,
                    fua: false,
                    rmw_edges: if i == 0 { rmw_edges } else { 0 },
                }));
                self.submit_mixed_group(
                    now,
                    GroupKind::FlushWrite(flush),
                    DevKind::Primary,
                    &parts,
                    FLUSH_STREAM,
                    out,
                );
                self.seg_scratch = parts;
            }
            GroupKind::FlushWrite(flush) => {
                self.policy.flush_complete(now, flush);
            }
        }
    }

    /// A device finished its in-flight request.
    pub fn on_dev_complete(&mut self, now: SimTime, kind: DevKind, out: &mut ServerOut) {
        let (req, actions) = match kind {
            DevKind::Primary => self.primary.on_complete(now),
            DevKind::Cache => self
                .cache
                .as_mut()
                .expect("cache device not configured")
                .on_complete(now),
        };
        out.extend_dev(kind, actions);
        for &tag in &req.tags {
            let (slot, gen) = unpack_group(tag);
            let gs = &mut self.group_slots[slot as usize];
            assert_eq!(gs.gen, gen, "completion for a retired group");
            gs.pending -= 1;
            if gs.pending == 0 {
                let done_kind = gs.kind;
                // Retire the slot: the generation bump invalidates any
                // stale tag that might still reference it.
                gs.gen = gs.gen.wrapping_add(1);
                self.free_groups.push(slot);
                self.live_groups -= 1;
                self.handle_group_done(now, done_kind, out);
            }
        }
    }

    /// A device anticipation timer fired.
    pub fn on_dev_recheck(&mut self, now: SimTime, kind: DevKind, gen: u64, out: &mut ServerOut) {
        let actions = match kind {
            DevKind::Primary => self.primary.on_recheck(now, gen),
            DevKind::Cache => self
                .cache
                .as_mut()
                .map(|c| c.on_recheck(now, gen))
                .unwrap_or_default(),
        };
        out.extend_dev(kind, actions);
    }

    /// Periodic writeback opportunity. Unless `force`d (end-of-run
    /// drain), only acts while the primary device is quiet, as the paper
    /// specifies ("during quiet I/O-device periods").
    pub fn writeback_tick(&mut self, now: SimTime, force: bool, out: &mut ServerOut) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        if !force {
            // Background log maintenance (segment compaction/GC,
            // checkpoints, scrubbing) rides the same tick but keys on
            // the *cache* device being quiet — it reads and rewrites
            // the SSD log, not the disk. The end-of-run drain skips it:
            // maintenance never delays the drain.
            let idle = cache.probe_idle();
            self.policy.log_maintenance(now, idle);
        }
        if !force && !self.primary.is_idle() {
            return;
        }
        let batch = self.policy.flush_batch(now, self.cfg.writeback_batch);
        for op in batch {
            self.submit_group(
                now,
                GroupKind::FlushRead(op.id),
                DevKind::Cache,
                IoDir::Read,
                &op.ssd_extents,
                FLUSH_STREAM,
                false,
                out,
            );
            let id = op.id;
            let prev = self.flushes.insert(id, op);
            assert!(prev.is_none(), "duplicate flush id {id}");
        }
    }

    /// Fault injection: the server process dies at `now`. Every piece
    /// of volatile state — in-flight jobs, completion groups, flush
    /// bookkeeping, queued and in-flight device I/O, the page cache —
    /// is lost; the devices are rebuilt cold. The policy is *not*
    /// touched here: its durable (on-SSD) state is replayed by
    /// [`DataServer::restart`] when the process comes back. The caller
    /// must discard any scheduled device events for this server (their
    /// completions now refer to hardware queues that no longer exist).
    pub fn crash(&mut self, _now: SimTime) {
        self.jobs.clear();
        self.flushes.clear();
        self.group_slots.clear();
        self.free_groups.clear();
        self.live_groups = 0;
        self.ra.clear();
        self.cpu_free = SimTime::ZERO;
        self.primary = make_primary(&self.cfg);
        self.cache = if self.cache_lost {
            None
        } else {
            make_cache(&self.cfg)
        };
        self.obs_label_devices();
    }

    /// Fault injection: the crashed process comes back up and replays
    /// the on-SSD mapping-table backup (clean entries invalidated,
    /// dirty entries preserved — see [`CachePolicy::server_restart`]).
    pub fn restart(&mut self, now: SimTime) -> RestartReport {
        self.policy.server_restart(now)
    }

    /// Fault injection: silently corrupts the on-SSD mapping-table
    /// backup log. Nothing observable happens until the next restart's
    /// recovery fsck scans the log. Returns the number of backup
    /// records affected (0 with no cache device to corrupt).
    pub fn corrupt_cache(&mut self, now: SimTime, corruption: LogCorruption) -> u64 {
        if self.cache.is_none() {
            return 0;
        }
        self.policy.inject_corruption(now, corruption)
    }

    /// Fault injection: the SSD cache device fails permanently. All
    /// in-flight cache I/O dies; jobs that were being served from the
    /// SSD are appended to `lost_jobs` so the cluster can drop its
    /// bookkeeping (clients recover them by timeout + retry against
    /// the now-degraded, disk-only server). Returns the dirty bytes
    /// destroyed with the device — the durability cost of buffering
    /// writes in the cache.
    pub fn lose_cache_dev(&mut self, now: SimTime, lost_jobs: &mut Vec<JobId>) -> u64 {
        if self.cache.take().is_none() {
            return 0;
        }
        self.cache_lost = true;
        for slot in 0..self.group_slots.len() {
            let gs = &mut self.group_slots[slot];
            if gs.pending == 0 || gs.dev != DevKind::Cache {
                continue;
            }
            // Retire the group: the generation bump invalidates any
            // completion already scheduled for its segments.
            gs.pending = 0;
            gs.gen = gs.gen.wrapping_add(1);
            let kind = gs.kind;
            self.free_groups.push(slot as u32);
            self.live_groups -= 1;
            match kind {
                GroupKind::Job(job) => {
                    self.jobs.remove(&job);
                    lost_jobs.push(job);
                }
                // The admission's entry dies with the policy state below.
                GroupKind::Admission(_) => {}
                GroupKind::FlushRead(flush) => {
                    self.flushes.remove(&flush);
                }
                // Flush writes run on the primary device.
                GroupKind::FlushWrite(_) => unreachable!("flush write on cache device"),
            }
        }
        self.policy.ssd_lost(now)
    }

    /// Fault injection: sets (or clears, `f = 1.0`) the fail-slow
    /// service-time multiplier on one device. A missing cache device is
    /// ignored.
    pub fn set_slow_factor(&mut self, dev: DevKind, f: f64) {
        match dev {
            DevKind::Primary => self.primary.set_slow_factor(f),
            DevKind::Cache => {
                if let Some(c) = &mut self.cache {
                    c.set_slow_factor(f);
                }
            }
        }
    }

    /// True when the server has no work in flight and no dirty data.
    pub fn quiescent(&self) -> bool {
        self.jobs.is_empty()
            && self.live_groups == 0
            && self.primary.is_idle()
            && self.cache.as_ref().is_none_or(|c| c.is_idle())
            && self.policy.dirty_bytes() == 0
    }

    /// Preallocates the local datafile backing `file` with `bytes` of
    /// capacity (the per-server share of a striped file).
    pub fn preallocate(&mut self, file: FileHandle, bytes: u64) {
        self.fs
            .preallocate(file, bytes)
            .expect("preallocation exceeded device capacity");
    }

    /// Sectors a sub-request of `len` bytes occupies (helper for stats).
    pub fn sectors_for(len: u64) -> u64 {
        bytes_to_sectors(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ReqClass;
    use crate::StockPolicy;
    use ibridge_des::Simulation;
    use ibridge_localfs::ExtentList;

    fn server() -> DataServer {
        DataServer::new(0, ServerConfig::default(), Box::new(StockPolicy::new()))
    }

    fn sub(dir: IoDir, offset: u64, len: u64) -> SubRequest {
        SubRequest {
            dir,
            file: FileHandle(1),
            server: 0,
            offset,
            len,
            class: ReqClass::Bulk,
        }
    }

    /// Wrapper over the out-param API for tests that want a fresh value.
    fn exec(
        s: &mut DataServer,
        t: SimTime,
        job: JobId,
        stream: StreamId,
        r: SubRequest,
    ) -> ServerOut {
        let mut out = ServerOut::default();
        s.exec_subreq(t, job, stream, r, &mut out);
        out
    }

    fn tick(s: &mut DataServer, t: SimTime, force: bool) -> ServerOut {
        let mut out = ServerOut::default();
        s.writeback_tick(t, force, &mut out);
        out
    }

    /// Pumps all device events for one server until quiet; returns done
    /// jobs in completion order.
    fn pump(server: &mut DataServer, initial: ServerOut) -> Vec<JobId> {
        #[derive(Debug)]
        enum Ev {
            Done(DevKind),
            Recheck(DevKind, u64),
        }
        let mut sim: Simulation<Ev> = Simulation::new();
        let mut done = Vec::new();
        let push = |sim: &mut Simulation<Ev>, out: &ServerOut| {
            for (kind, a) in &out.dev_actions {
                match a {
                    Action::CompleteAt(t) => sim.schedule_at(*t, Ev::Done(*kind)),
                    Action::RecheckAt(t, g) => sim.schedule_at(*t, Ev::Recheck(*kind, *g)),
                };
            }
        };
        done.extend(initial.done_jobs.iter().copied());
        push(&mut sim, &initial);
        let mut out = ServerOut::default();
        while let Some((t, ev)) = sim.pop() {
            out.clear();
            match ev {
                Ev::Done(k) => server.on_dev_complete(t, k, &mut out),
                Ev::Recheck(k, g) => server.on_dev_recheck(t, k, g, &mut out),
            }
            done.extend(out.done_jobs.iter().copied());
            push(&mut sim, &out);
        }
        done
    }

    #[test]
    fn write_then_read_roundtrip() {
        // Disable the page-cache model so the read actually hits the disk.
        let cfg = ServerConfig {
            ra_fill: 0,
            ra_budget: 0,
            ..Default::default()
        };
        let mut s = DataServer::new(0, cfg, Box::new(StockPolicy::new()));
        let t = SimTime::ZERO;
        let out = exec(&mut s, t, 1, 10, sub(IoDir::Write, 0, 65536));
        let done = pump(&mut s, out);
        assert_eq!(done, vec![1]);
        let out = exec(
            &mut s,
            SimTime::from_secs(1),
            2,
            10,
            sub(IoDir::Read, 0, 65536),
        );
        let done = pump(&mut s, out);
        assert_eq!(done, vec![2]);
        assert!(s.quiescent());
        let stats = s.primary().stats();
        assert_eq!(stats.bytes_written, 65536);
        assert_eq!(stats.bytes_read, 65536);
    }

    #[test]
    fn write_then_read_hits_page_cache() {
        let mut s = server();
        let out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Write, 0, 65536));
        pump(&mut s, out);
        let out = exec(
            &mut s,
            SimTime::from_secs(1),
            2,
            10,
            sub(IoDir::Read, 0, 65536),
        );
        let done = pump(&mut s, out);
        assert_eq!(done, vec![2]);
        assert_eq!(s.primary().stats().bytes_read, 0, "served from page cache");
        assert_eq!(s.readahead_hits(), (1, 65536));
    }

    #[test]
    #[should_panic(expected = "preallocate")]
    fn reading_unallocated_panics() {
        let mut s = server();
        exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Read, 0, 4096));
    }

    #[test]
    fn preallocation_enables_reads() {
        let mut s = server();
        s.preallocate(FileHandle(1), 1 << 20);
        let out = exec(&mut s, SimTime::ZERO, 7, 3, sub(IoDir::Read, 65536, 65536));
        let done = pump(&mut s, out);
        assert_eq!(done, vec![7]);
    }

    #[test]
    fn cpu_admission_serialises() {
        let mut s = server();
        let t = SimTime::ZERO;
        let a = s.cpu_admit(t);
        let b = s.cpu_admit(t);
        assert_eq!(a, t + ServerConfig::default().op_overhead);
        assert_eq!(b, a + ServerConfig::default().op_overhead);
        // After an idle gap the CPU is free immediately.
        let later = SimTime::from_secs(5);
        let c = s.cpu_admit(later);
        assert_eq!(c, later + ServerConfig::default().op_overhead);
    }

    #[test]
    fn multiple_jobs_complete_independently() {
        let mut s = server();
        s.preallocate(FileHandle(1), 4 << 20);
        let t = SimTime::ZERO;
        let mut out = exec(&mut s, t, 1, 10, sub(IoDir::Read, 0, 65536));
        s.exec_subreq(t, 2, 11, sub(IoDir::Read, 2 << 20, 65536), &mut out);
        let done = pump(&mut s, out);
        assert_eq!(done.len(), 2);
        assert!(s.quiescent());
    }

    #[test]
    fn ssd_only_primary_works() {
        let cfg = ServerConfig {
            primary_is_ssd: true,
            ..Default::default()
        };
        let mut s = DataServer::new(0, cfg, Box::new(StockPolicy::new()));
        let out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Write, 0, 4096));
        let done = pump(&mut s, out);
        assert_eq!(done, vec![1]);
    }

    #[test]
    fn writeback_tick_without_cache_is_noop() {
        let mut s = server();
        let out = tick(&mut s, SimTime::ZERO, true);
        assert!(out.dev_actions.is_empty());
        assert!(out.done_jobs.is_empty());
    }

    /// A scripted policy exercising the server's cache plumbing: every
    /// read admits after disk service; every write redirects to a fixed
    /// log position; flush_batch returns one op per dirty entry.
    #[derive(Debug, Default)]
    struct Scripted {
        next_log: u64,
        dirty: Vec<(u64, crate::policy::FlushOp)>,
        admissions: std::cell::Cell<u64>,
        flushed: u64,
    }

    impl crate::policy::CachePolicy for Scripted {
        fn place(
            &mut self,
            _now: SimTime,
            sub: &SubRequest,
            _lbn: u64,
        ) -> crate::policy::Placement {
            if sub.dir.is_write() {
                let sectors = sub.len.div_ceil(512);
                let extents = ExtentList::one(Extent {
                    lbn: self.next_log,
                    sectors,
                });
                let id = self.next_log;
                self.next_log += sectors;
                self.dirty.push((
                    id,
                    crate::policy::FlushOp {
                        id,
                        file: sub.file,
                        offset: sub.offset,
                        len: sub.len,
                        ssd_extents: extents.clone(),
                    },
                ));
                crate::policy::Placement::Ssd { extents }
            } else {
                crate::policy::Placement::Disk {
                    admit_after_read: true,
                }
            }
        }

        fn read_admission(&mut self, _now: SimTime, sub: &SubRequest) -> Option<(u64, ExtentList)> {
            let sectors = sub.len.div_ceil(512);
            let extents = ExtentList::one(Extent {
                lbn: self.next_log,
                sectors,
            });
            let id = self.next_log;
            self.next_log += sectors;
            Some((id, extents))
        }

        fn admission_complete(&mut self, _now: SimTime, _entry: u64) {
            self.admissions.set(self.admissions.get() + 1);
        }

        fn flush_batch(&mut self, _now: SimTime, _max: u64) -> Vec<crate::policy::FlushOp> {
            self.dirty.drain(..).map(|(_, op)| op).collect()
        }

        fn flush_complete(&mut self, _now: SimTime, _id: u64) {
            self.flushed += 1;
        }

        fn report_t(&self) -> f64 {
            0.0
        }
        fn receive_broadcast(&mut self, _t: &[f64]) {}
        fn dirty_bytes(&self) -> u64 {
            self.dirty.len() as u64
        }
        fn stats(&self) -> crate::policy::CacheStats {
            crate::policy::CacheStats::default()
        }
    }

    fn cache_server() -> DataServer {
        let cfg = ServerConfig {
            with_cache_dev: true,
            ..Default::default()
        };
        DataServer::new(0, cfg, Box::new(Scripted::default()))
    }

    #[test]
    fn redirected_write_uses_the_cache_device() {
        let mut s = cache_server();
        let out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Write, 0, 4096));
        let done = pump(&mut s, out);
        assert_eq!(done, vec![1]);
        assert_eq!(s.cache().unwrap().stats().bytes_written, 4096);
        assert_eq!(s.primary().stats().bytes_written, 0, "disk untouched");
    }

    #[test]
    fn read_admission_copies_into_the_cache_after_disk_read() {
        let mut s = cache_server();
        s.preallocate(FileHandle(1), 1 << 20);
        let out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Read, 0, 8192));
        let done = pump(&mut s, out);
        assert_eq!(done, vec![1]);
        assert_eq!(s.primary().stats().bytes_read, 8192);
        // The admission write landed on the SSD afterwards.
        assert_eq!(s.cache().unwrap().stats().bytes_written, 8192);
    }

    #[test]
    fn forced_writeback_runs_the_two_phase_flush() {
        let mut s = cache_server();
        let out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Write, 0, 4096));
        pump(&mut s, out);
        assert!(!s.quiescent(), "dirty data pending");
        let out = tick(&mut s, SimTime::from_secs(1), true);
        pump(&mut s, out);
        // SSD read + disk write both happened.
        assert_eq!(s.cache().unwrap().stats().bytes_read, 4096);
        assert_eq!(s.primary().stats().bytes_written, 4096);
        assert!(s.quiescent());
    }

    #[test]
    fn unforced_writeback_waits_for_a_quiet_disk() {
        let mut s = cache_server();
        s.preallocate(FileHandle(1), 1 << 20);
        // Busy the disk with a read, leave a dirty entry in the cache.
        let mut out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Write, 65536, 4096));
        s.exec_subreq(SimTime::ZERO, 2, 11, sub(IoDir::Read, 0, 65536), &mut out);
        // Tick immediately: the primary device is busy → no flush issued.
        let t0 = tick(&mut s, SimTime::ZERO, false);
        assert!(t0.dev_actions.is_empty(), "must not flush under load");
        pump(&mut s, out);
        // Now the disk is quiet: the tick flushes.
        let t1 = tick(&mut s, SimTime::from_secs(2), false);
        assert!(!t1.dev_actions.is_empty());
        pump(&mut s, t1);
        assert!(s.quiescent());
    }

    #[test]
    fn sub_block_write_is_sector_granular() {
        let mut s = server();
        let out = exec(&mut s, SimTime::ZERO, 1, 10, sub(IoDir::Write, 100, 700));
        let done = pump(&mut s, out);
        assert_eq!(done, vec![1]);
        // 700 bytes from offset 100 → sectors 0..2 (two sectors).
        assert_eq!(s.primary().stats().bytes_written, 1024);
    }
}

//! `calbench` — calendar-queue microbenchmark for the perf-smoke gate.
//!
//! Dispatches a fixed number of events (default 10⁶) through the DES
//! calendar while keeping a rolling window of pending timers, the same
//! push/pop/cancel mix a cluster run produces. Stdout is a deterministic
//! digest that CI compares against a committed golden; wall-clock
//! figures go to stderr so timing noise never fails the gate.
//!
//! ```text
//! calbench [--events N] [--window W] [--seed S]
//! ```

use ibridge_bench::alloc_count;
use ibridge_des::rng::stream_rng;
use ibridge_des::{SimDuration, Simulation};
use rand::Rng;
use std::time::Instant;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("integer argument"))
            .unwrap_or(default)
    };
    let total: u64 = get("--events", 1_000_000);
    let window: u64 = get("--window", 256);
    let seed: u64 = get("--seed", 42);

    let mut sim: Simulation<u64> = Simulation::new();
    let mut rng = stream_rng(seed, 0);
    // Pending timers get cancelled and rescheduled like device rechecks.
    let mut cancel_me = Vec::new();
    let mut payload_sum = 0u64;
    let mut dispatched = 0u64;
    for i in 0..window {
        sim.post_in(SimDuration::from_nanos(rng.gen_range(1..1000)), i);
    }
    let a0 = alloc_count::snapshot();
    let t0 = Instant::now();
    while dispatched < total {
        let (now, payload) = sim.pop().expect("calendar drained early");
        dispatched += 1;
        payload_sum = payload_sum.wrapping_mul(31).wrapping_add(payload);
        // Keep the window full: one new timer per dispatch, and every
        // 16th event also schedules-then-cancels (the recheck pattern).
        let d = SimDuration::from_nanos(rng.gen_range(1..1000));
        sim.post_in(d, payload.wrapping_add(1));
        if dispatched % 16 == 0 {
            let id = sim.schedule_at(
                now + SimDuration::from_nanos(rng.gen_range(1..1000)),
                u64::MAX,
            );
            cancel_me.push(id);
        }
        if cancel_me.len() >= 8 {
            for id in cancel_me.drain(..) {
                sim.cancel(id);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let a1 = alloc_count::snapshot();

    // Deterministic digest: compared byte-for-byte by CI.
    println!(
        "calbench events={} window={} seed={} digest={:016x} final_ns={}",
        dispatched,
        window,
        seed,
        payload_sum,
        sim.now().as_nanos(),
    );
    eprintln!(
        "[calbench: {:.0} events/s, {:.3}s wall{}]",
        dispatched as f64 / wall.max(1e-9),
        wall,
        if alloc_count::enabled() {
            format!(
                ", {} allocs ({:.4}/event), peak {} bytes",
                a1.allocs - a0.allocs,
                (a1.allocs - a0.allocs) as f64 / dispatched as f64,
                a1.peak,
            )
        } else {
            String::new()
        }
    );
}

//! `calbench` — calendar-queue microbenchmark for the perf-smoke gate.
//!
//! Dispatches a fixed number of events (default 10⁶) through the DES
//! calendar while keeping a rolling window of pending timers, the same
//! push/pop/cancel mix a cluster run produces. Stdout is a deterministic
//! digest that CI compares against a committed golden; wall-clock
//! figures go to stderr so timing noise never fails the gate.
//!
//! ```text
//! calbench [--events N] [--window W] [--seed S]
//! ```

use ibridge_bench::alloc_count;
use ibridge_des::pdes::{LpPort, ShardedSimulation};
use ibridge_des::rng::stream_rng;
use ibridge_des::{SimDuration, SimTime, Simulation};
use rand::Rng;
use std::time::Instant;

#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("integer argument"))
            .unwrap_or(default)
    };
    let total: u64 = get("--events", 1_000_000);
    let window: u64 = get("--window", 256);
    let seed: u64 = get("--seed", 42);

    let mut sim: Simulation<u64> = Simulation::new();
    let mut rng = stream_rng(seed, 0);
    // Pending timers get cancelled and rescheduled like device rechecks.
    let mut cancel_me = Vec::new();
    let mut payload_sum = 0u64;
    let mut dispatched = 0u64;
    for i in 0..window {
        sim.post_in(SimDuration::from_nanos(rng.gen_range(1..1000)), i);
    }
    let a0 = alloc_count::snapshot();
    let t0 = Instant::now();
    while dispatched < total {
        let (now, payload) = sim.pop().expect("calendar drained early");
        dispatched += 1;
        payload_sum = payload_sum.wrapping_mul(31).wrapping_add(payload);
        // Keep the window full: one new timer per dispatch, and every
        // 16th event also schedules-then-cancels (the recheck pattern).
        let d = SimDuration::from_nanos(rng.gen_range(1..1000));
        sim.post_in(d, payload.wrapping_add(1));
        if dispatched % 16 == 0 {
            let id = sim.schedule_at(
                now + SimDuration::from_nanos(rng.gen_range(1..1000)),
                u64::MAX,
            );
            cancel_me.push(id);
        }
        if cancel_me.len() >= 8 {
            for id in cancel_me.drain(..) {
                sim.cancel(id);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let a1 = alloc_count::snapshot();

    // Deterministic digest: compared byte-for-byte by CI.
    println!(
        "calbench events={} window={} seed={} digest={:016x} final_ns={}",
        dispatched,
        window,
        seed,
        payload_sum,
        sim.now().as_nanos(),
    );
    eprintln!(
        "[calbench: {:.0} events/s, {:.3}s wall{}]",
        dispatched as f64 / wall.max(1e-9),
        wall,
        if alloc_count::enabled() {
            format!(
                ", {} allocs ({:.4}/event), peak {} bytes",
                a1.allocs - a0.allocs,
                (a1.allocs - a0.allocs) as f64 / dispatched as f64,
                a1.peak,
            )
        } else {
            String::new()
        }
    );

    // PDES microbench: the same event volume as a cross-LP ping-pong
    // ring through the sharded engine, swept over shard and thread
    // counts. Every combination must print the same digest — the
    // committed golden is itself a determinism proof for the threaded
    // driver. Throughput goes to stderr like the serial figures.
    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 4] {
            let (digest, events, wall, windows, barriers) = pdes_ring(total, shards, threads);
            println!(
                "calbench pdes events={events} nodes={PDES_NODES} \
                 shards={shards} threads={threads} digest={digest:016x}"
            );
            eprintln!(
                "[calbench pdes shards={} threads={}: {:.0} events/s, {:.3}s wall, \
                 {} window(s), {} barrier(s)]",
                shards,
                threads,
                events as f64 / wall.max(1e-9),
                wall,
                windows,
                barriers,
            );
        }
    }
}

/// Nodes in the PDES ring (LP counts divide into this).
const PDES_NODES: usize = 8;

/// One hop of the ring: the payload visits `node`, folds into its
/// digest, and forwards a mutated payload to the next node.
struct Hop {
    node: u16,
    hops: u32,
    payload: u64,
}

/// Runs `total` ring-hop events over `PDES_NODES` nodes packed onto
/// `shards` LPs with the given executor thread count. Returns the
/// node-order digest (identical at any shards/threads combination),
/// the events dispatched, the wall seconds, and the window/barrier
/// counts of the threaded driver (0/0 when serial).
fn pdes_ring(total: u64, shards: usize, threads: usize) -> (u64, u64, f64, u64, u64) {
    const L: SimDuration = SimDuration::from_micros(1);
    let node_lp: Vec<u32> = (0..PDES_NODES)
        .map(|i| (i * shards / PDES_NODES) as u32)
        .collect();
    let mut sim: ShardedSimulation<Hop> = ShardedSimulation::new(node_lp, L);

    // Four starters per node; each chain's hop budget splits `total`
    // exactly, so every combination dispatches the same event count.
    let starters = (PDES_NODES * 4) as u64;
    let hops = (total / starters).max(1) as u32 - 1;
    for n in 0..PDES_NODES as u16 {
        for k in 0..4u64 {
            sim.post_at(
                n,
                n,
                SimTime::ZERO + SimDuration::from_nanos(1 + k * 7 + n as u64),
                Hop {
                    node: n,
                    hops,
                    payload: (n as u64) << 32 | k,
                },
            );
        }
    }

    // Per-node digest folds: each LP only ever touches the digests of
    // nodes it owns, so the folds see that node's events in its own
    // deterministic dispatch order; combining them in node order below
    // gives one figure independent of how LPs interleaved globally.
    let handler =
        |port: &mut LpPort<'_, Hop>, st: &mut [u64; PDES_NODES], now: SimTime, ev: Hop| {
            let d = &mut st[ev.node as usize];
            *d = d.wrapping_mul(31).wrapping_add(ev.payload ^ now.as_nanos());
            if ev.hops > 0 {
                let dst = ((ev.node as usize + 1) % PDES_NODES) as u16;
                let at = now + L + SimDuration::from_nanos(ev.payload % 997);
                port.post_at(
                    ev.node,
                    dst,
                    at,
                    Hop {
                        node: dst,
                        hops: ev.hops - 1,
                        payload: ev
                            .payload
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407),
                    },
                );
            }
        };

    let mut states = vec![[0u64; PDES_NODES]; sim.n_lps()];
    let before = sim.dispatched();
    let t0 = Instant::now();
    let (windows, barriers) = if threads > 1 && sim.n_lps() > 1 {
        let rep = sim.run_threaded(&mut states, threads, handler);
        (rep.windows, rep.barriers)
    } else {
        sim.run_serial(&mut states, handler);
        (0, 0)
    };
    let wall = t0.elapsed().as_secs_f64();
    let events = sim.dispatched() - before;

    let mut digest = 0u64;
    for node in 0..PDES_NODES {
        let lp = node * shards / PDES_NODES;
        digest = digest.wrapping_mul(31).wrapping_add(states[lp][node]);
    }
    (digest, events, wall, windows, barriers)
}

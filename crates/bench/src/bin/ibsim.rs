//! `ibsim` — run one configurable scenario on the simulated cluster.
//!
//! ```text
//! ibsim --system ibridge --pattern mpiio --dir write \
//!       --procs 64 --size-kb 65 --offset-kb 0 --servers 8 \
//!       --total-mb 256 [--warm] [--seed 42] [--hist]
//! ibsim --system stock --pattern ior --dir read --size-kb 33
//! ibsim --system ssd-only --pattern btio --procs 16
//! ```
//!
//! Prints throughput, latency, SSD usage and (with `--hist`) the
//! block-level dispatch-size distribution.

use ibridge_bench::{build, Scale, System, FILE_A};
use ibridge_device::IoDir;
use ibridge_pvfs::{RunStats, Workload};
use ibridge_workloads::{Btio, IorMpiIo, MpiIoTest};

struct Opts {
    system: System,
    pattern: String,
    dir: IoDir,
    procs: usize,
    size_kb: u64,
    offset_kb: u64,
    servers: usize,
    total_mb: u64,
    warm: bool,
    hist: bool,
    seed: u64,
}

fn parse() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let getu = |name: &str, default: u64| -> u64 {
        get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("{name} needs an integer")))
            })
            .unwrap_or(default)
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: ibsim [--system stock|ibridge|ssd-only] [--pattern mpiio|ior|btio]\n\
             \x20            [--dir read|write] [--procs N] [--size-kb K] [--offset-kb K]\n\
             \x20            [--servers N] [--total-mb M] [--warm] [--hist] [--seed S]"
        );
        std::process::exit(0);
    }
    let system = match get("--system").as_deref().unwrap_or("ibridge") {
        "stock" => System::Stock,
        "ibridge" => System::IBridge,
        "ssd-only" => System::SsdOnly,
        other => die(&format!("unknown system {other:?}")),
    };
    let dir = match get("--dir").as_deref().unwrap_or("write") {
        "read" | "r" => IoDir::Read,
        "write" | "w" => IoDir::Write,
        other => die(&format!("unknown direction {other:?}")),
    };
    Opts {
        system,
        pattern: get("--pattern").unwrap_or_else(|| "mpiio".into()),
        dir,
        procs: getu("--procs", 64) as usize,
        size_kb: getu("--size-kb", 65),
        offset_kb: getu("--offset-kb", 0),
        servers: getu("--servers", 8) as usize,
        total_mb: getu("--total-mb", 256),
        warm: args.iter().any(|a| a == "--warm"),
        hist: args.iter().any(|a| a == "--hist"),
        seed: getu("--seed", 42),
    }
}

fn make_workload(o: &Opts) -> (Box<dyn Workload>, u64) {
    let total = o.total_mb << 20;
    match o.pattern.as_str() {
        "mpiio" => {
            let w = MpiIoTest::sized(o.dir, FILE_A, o.procs, o.size_kb << 10, total)
                .with_shift(o.offset_kb << 10);
            let span = w.span_bytes();
            (Box::new(w), span)
        }
        "ior" => {
            let w = IorMpiIo::sized(o.dir, FILE_A, o.procs, o.size_kb << 10, total);
            let span = w.span_bytes();
            (Box::new(w), span)
        }
        "btio" => {
            let w = Btio::new(
                FILE_A,
                o.procs,
                total,
                16,
                ibridge_des::SimDuration::from_millis(100),
            );
            let span = w.span_bytes();
            (Box::new(w), span)
        }
        other => die(&format!("unknown pattern {other:?}")),
    }
}

fn report(o: &Opts, stats: &RunStats) {
    println!(
        "{:9} {} {:?} procs={} size={}KB offset={}KB servers={}",
        o.system.label(),
        o.pattern,
        o.dir,
        o.procs,
        o.size_kb,
        o.offset_kb,
        o.servers
    );
    println!(
        "  throughput : {:8.1} MB/s   (client phase {:.1} MB/s)",
        stats.throughput_mbps(),
        stats.client_throughput_mbps()
    );
    println!(
        "  latency    : mean {:.2} ms, p50 {} ms, p99 {} ms",
        stats.latency_ms.mean().unwrap_or(0.0),
        stats.latency_hist_ms.quantile(0.5).unwrap_or(0),
        stats.latency_hist_ms.quantile(0.99).unwrap_or(0),
    );
    println!(
        "  elapsed    : {:.2} s virtual ({} requests, {:.1} MB)",
        stats.elapsed.as_secs_f64(),
        stats.requests,
        stats.bytes as f64 / 1e6
    );
    if o.system == System::IBridge {
        let hits: u64 = stats.servers.iter().map(|s| s.policy.read_hits).sum();
        let redirected: u64 = stats
            .servers
            .iter()
            .map(|s| s.policy.redirected_writes)
            .sum();
        println!(
            "  ssd        : {:.1}% of bytes, {} hits, {} redirected writes",
            stats.ssd_served_fraction() * 100.0,
            hits,
            redirected
        );
    }
    if o.hist {
        let h = if o.dir.is_read() {
            stats.combined_read_hist()
        } else {
            stats.combined_write_hist()
        };
        println!("  dispatch sizes (top 6):");
        for (sectors, count) in h.top_k(6) {
            println!(
                "    {:>4} sectors ({:>6.1} KB): {:>5.1}%",
                sectors,
                sectors as f64 / 2.0,
                count as f64 * 100.0 / h.total() as f64
            );
        }
    }
}

fn main() {
    let o = parse();
    let scale = Scale {
        seed: o.seed,
        ..Scale::quick()
    };
    let mut cluster = build(o.system, o.servers, &scale);
    let (mut w, span) = make_workload(&o);
    cluster.preallocate(FILE_A, span + (1 << 20));
    if o.warm {
        cluster.run(w.as_mut());
        let (mut w2, _) = make_workload(&o);
        let stats = cluster.run(w2.as_mut());
        report(&o, &stats);
    } else {
        let stats = cluster.run(w.as_mut());
        report(&o, &stats);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("ibsim: {msg}");
    std::process::exit(2);
}

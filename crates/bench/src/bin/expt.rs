//! Experiment runner.
//!
//! ```text
//! expt all                 # every table and figure, paper order
//! expt fig4 fig5           # specific experiments
//! expt --full all          # paper-scale data sizes (slow)
//! expt --seed 7 table3     # different seed
//! expt --list              # what exists
//! ```

use ibridge_bench::experiments;
use ibridge_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => {
                scale = Scale {
                    seed: scale.seed,
                    ..Scale::full()
                };
            }
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--seed needs a value"));
                scale.seed = v
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--list" => {
                for e in experiments::all() {
                    println!("{:8} {}", e.name, e.what);
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: expt [--full] [--seed N] [--list] <experiment|all>..."
                );
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other}"));
            }
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() {
        die("no experiment named; try `expt --list` or `expt all`");
    }
    let catalogue = experiments::all();
    let run_all = selected.iter().any(|s| s == "all");
    let start = std::time::Instant::now();
    let mut ran = 0;
    for e in &catalogue {
        if run_all || selected.iter().any(|s| s == e.name) {
            println!("### {} — {}\n", e.name, e.what);
            (e.run)(&scale);
            ran += 1;
        }
    }
    if ran == 0 {
        die("no experiment matched; try `expt --list`");
    }
    eprintln!(
        "[{} experiment(s) in {:.1}s wall]",
        ran,
        start.elapsed().as_secs_f64()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("expt: {msg}");
    std::process::exit(2);
}

//! Experiment runner.
//!
//! ```text
//! expt all                 # every table and figure, paper order
//! expt fig4 fig5           # specific experiments
//! expt --full all          # paper-scale data sizes (slow)
//! expt --seed 7 table3     # different seed
//! expt --jobs 4 all        # worker-pool size (output is identical)
//! expt --bench-report B.json all   # also write a self-benchmark report
//! expt --metrics summary   # phase/class/server latency tables
//! expt --trace-out T.json summary  # Chrome trace-event JSON
//! expt --list              # what exists
//! ```
//!
//! Experiments run concurrently on the [`ibridge_bench::runpar`] pool
//! (individual data points parallelise too, against the same budget) and
//! their rendered blocks print in catalogue order, so stdout is
//! byte-identical at any `--jobs` level.

use ibridge_bench::experiments::{self, Experiment};
use ibridge_bench::{alloc_count, runpar, Scale};
use std::time::Instant;

/// With `--features count-allocs`, every heap operation in this binary is
/// counted per thread; `--bench-report` turns the counters into
/// allocations-per-event figures (see `BENCH_pr2.json`).
#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut selected: Vec<String> = Vec::new();
    let mut bench_report: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut show_metrics = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => {
                // Only the data-size knobs change; seed/shards/fault
                // flags given earlier on the command line survive.
                let full = Scale::full();
                scale = Scale {
                    stream_bytes: full.stream_bytes,
                    btio_bytes: full.btio_bytes,
                    trace_requests: full.trace_requests,
                    ssd_capacity: full.ssd_capacity,
                    page_cache: full.page_cache,
                    ..scale
                };
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                scale.seed = v.parse().unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| die("--jobs needs a value"));
                let n: usize = v.parse().unwrap_or_else(|_| die("--jobs needs an integer"));
                if n == 0 {
                    die("--jobs must be at least 1");
                }
                runpar::set_jobs(n);
            }
            "--shards" => {
                let v = it.next().unwrap_or_else(|| die("--shards needs a value"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| die("--shards needs an integer"));
                if n == 0 {
                    die("--shards must be at least 1");
                }
                scale.shards = n;
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs an integer"));
                if n == 0 {
                    die("--threads must be at least 1");
                }
                scale.threads = n;
            }
            "--bench-report" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--bench-report needs a path"));
                bench_report = Some(v.clone());
            }
            "--trace-out" => {
                let v = it.next().unwrap_or_else(|| die("--trace-out needs a path"));
                trace_out = Some(v.clone());
                ibridge_obs::set_tracing(true);
            }
            "--metrics" => {
                show_metrics = true;
                ibridge_obs::set_metrics(true);
            }
            "--fault-plan" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--fault-plan needs a builtin name or a file path"));
                scale.fault_plan = Some(load_fault_plan(v));
            }
            "--mds-replicas" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--mds-replicas needs a value"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| die("--mds-replicas needs an integer"));
                if n == 0 {
                    die("--mds-replicas must be at least 1");
                }
                scale.mds_replicas = n;
            }
            "--audit" => {
                // The auditor is read-only, so output is byte-identical
                // with or without this flag; CI runs the fault matrix
                // with it on to catch invariant violations for free.
                scale.audit_interval = Some(ibridge_des::SimDuration::from_millis(5));
            }
            "--list-fault-plans" => {
                for (name, what) in ibridge_faults::BUILTIN_PLANS {
                    println!("{name:10} {what}");
                }
                return;
            }
            "--list" => {
                for e in experiments::all() {
                    println!("{:8} {}", e.name, e.what);
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: expt [--full] [--seed N] [--jobs N] [--shards N] \
                     [--threads N] [--mds-replicas N] \
                     [--bench-report PATH] [--metrics] [--trace-out PATH] \
                     [--fault-plan NAME|FILE] \
                     [--audit] [--list] [--list-fault-plans] \
                     <experiment|all>...\n\
                     fault plans: builtin names are {}; anything else is \
                     read as a plan file (see crates/faults). \
                     --shards splits each simulated cluster's data servers \
                     into N logical processes with their own event \
                     calendars; output is byte-identical at any N. \
                     --threads executes ready logical processes \
                     concurrently inside each run on N worker threads \
                     with deterministic window barriers (needs --shards \
                     at least 2 to matter); output is byte-identical at \
                     any N. \
                     --mds-replicas runs the metadata service as a \
                     raft-style replicated group of N (default 1, the \
                     single MDS); elections and failover are simulated \
                     in virtual time and output stays byte-identical at \
                     any shard/thread/jobs level. \
                     --audit runs the online invariant auditor every 5ms \
                     of virtual time (read-only; output is unchanged). \
                     --metrics prints virtual-time latency tables after the \
                     experiment blocks; --trace-out writes a Chrome \
                     trace-event JSON of every request's span tree (load \
                     in chrome://tracing or Perfetto). Both are \
                     deterministic: byte-identical at any --jobs level",
                    ibridge_faults::BUILTIN_NAMES.join(", ")
                );
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other}"));
            }
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() {
        die("no experiment named; try `expt --list` or `expt all`");
    }
    let catalogue = experiments::all();
    let unknown: Vec<&str> = selected
        .iter()
        .filter(|s| *s != "all" && !catalogue.iter().any(|e| e.name == s.as_str()))
        .map(|s| s.as_str())
        .collect();
    if !unknown.is_empty() {
        die(&format!(
            "unknown experiment(s): {}; try `expt --list`",
            unknown.join(", ")
        ));
    }
    let run_all = selected.iter().any(|s| s == "all");
    let chosen: Vec<&Experiment> = catalogue
        .iter()
        .filter(|e| run_all || selected.iter().any(|s| s == e.name))
        .collect();
    if chosen.is_empty() {
        die("no experiment matched; try `expt --list`");
    }

    let jobs = runpar::jobs();
    let start = Instant::now();
    let events_before = ibridge_pvfs::total_events_dispatched();
    let results: Vec<(String, f64)> = runpar::par_map(chosen.clone(), |e| {
        let t0 = Instant::now();
        let out = (e.run)(&scale);
        (out, t0.elapsed().as_secs_f64())
    });
    let wall = start.elapsed().as_secs_f64();
    let events = ibridge_pvfs::total_events_dispatched() - events_before;
    for (e, (out, _)) in chosen.iter().zip(&results) {
        print!("### {} — {}\n\n{out}", e.name, e.what);
    }
    // Observability flags go off before any `--bench-report` rerun so the
    // `--jobs 1` baseline runs the same configuration as the parallel
    // pass and does not double-count samples into the snapshot.
    let metrics_snap = if show_metrics {
        ibridge_obs::set_metrics(false);
        Some(ibridge_obs::metrics::snapshot())
    } else {
        None
    };
    if let Some(reg) = &metrics_snap {
        let rendered = ibridge_bench::obs_report::render(reg);
        if rendered.is_empty() {
            println!("(metrics: nothing recorded — obs feature compiled out)\n");
        } else {
            print!("{rendered}");
        }
    }
    eprintln!(
        "[{} experiment(s) in {:.1}s wall, {} sim events, {:.0} events/s, jobs={}]",
        chosen.len(),
        wall,
        events,
        events as f64 / wall.max(1e-9),
        jobs,
    );

    if let Some(path) = &trace_out {
        ibridge_obs::set_tracing(false);
        let trace = ibridge_obs::trace::take_chunks();
        let json = trace.to_chrome_json();
        if let Err(e) = std::fs::write(path, &json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("[trace: {} span(s) -> {path}]", trace.span_count());
    }

    if let Some(path) = bench_report {
        write_bench_report(
            &path,
            &scale,
            jobs,
            &chosen,
            &results,
            wall,
            events,
            metrics_snap.as_ref(),
        );
    }
}

/// Reruns the chosen experiments at `--jobs 1`, checks byte-identity of
/// the rendered output, and writes a JSON self-benchmark report.
#[allow(clippy::too_many_arguments)]
fn write_bench_report(
    path: &str,
    scale: &Scale,
    jobs: usize,
    chosen: &[&Experiment],
    par_results: &[(String, f64)],
    par_wall: f64,
    events: u64,
    obs_metrics: Option<&ibridge_obs::metrics::Registry>,
) {
    eprintln!("[bench-report: rerunning at --jobs 1 for the baseline]");
    runpar::set_jobs(1);
    // At `--jobs 1` the runpar pool degenerates to a sequential map on
    // this thread, so thread-local allocation counters and the global
    // event counter attribute exactly to the experiment between the two
    // snapshots.
    struct SeqRun {
        out: String,
        wall: f64,
        events: u64,
        allocs: u64,
        alloc_bytes: u64,
        peak_bytes: u64,
    }
    // The baseline also forces --threads 1 --shards 1: `wall_s_jobs1`
    // and `events_per_sec_jobs1` mean "the canonical serial engine, end
    // to end", comparable across reports whatever sharding or threading
    // the main pass used. Output is byte-identical at any shard or
    // thread count, so the identity check below doubles as a
    // shard/thread determinism gate.
    let serial_scale = Scale {
        threads: 1,
        shards: 1,
        ..*scale
    };
    let seq_start = Instant::now();
    let seq: Vec<SeqRun> = chosen
        .iter()
        .map(|e| {
            let t0 = Instant::now();
            let ev0 = ibridge_pvfs::total_events_dispatched();
            let a0 = alloc_count::snapshot();
            alloc_count::reset_peak();
            let out = (e.run)(&serial_scale);
            let a1 = alloc_count::snapshot();
            SeqRun {
                out,
                wall: t0.elapsed().as_secs_f64(),
                events: ibridge_pvfs::total_events_dispatched() - ev0,
                allocs: a1.allocs - a0.allocs,
                alloc_bytes: a1.bytes - a0.bytes,
                peak_bytes: a1.peak,
            }
        })
        .collect();
    let seq_wall = seq_start.elapsed().as_secs_f64();

    // A third rerun (still --jobs 1) with the requested --threads
    // isolates the intra-run PDES driver from experiment-level
    // parallelism: `events_per_sec_threaded` vs `events_per_sec_jobs1`
    // is the threading speedup alone.
    struct ThrRun {
        out: String,
        wall: f64,
        events: u64,
    }
    let mut thr_windows = 0u64;
    let mut thr_barriers = 0u64;
    let threaded: Option<Vec<ThrRun>> = if scale.threads > 1 {
        eprintln!(
            "[bench-report: rerunning at --jobs 1 --threads {} for the \
             threaded baseline]",
            scale.threads
        );
        let (w0, b0) = ibridge_pvfs::total_window_counters();
        let runs = chosen
            .iter()
            .map(|e| {
                let t0 = Instant::now();
                let ev0 = ibridge_pvfs::total_events_dispatched();
                let out = (e.run)(scale);
                ThrRun {
                    out,
                    wall: t0.elapsed().as_secs_f64(),
                    events: ibridge_pvfs::total_events_dispatched() - ev0,
                }
            })
            .collect();
        let (w1, b1) = ibridge_pvfs::total_window_counters();
        thr_windows = w1 - w0;
        thr_barriers = b1 - b0;
        Some(runs)
    } else {
        None
    };
    let thr_wall: Option<f64> = threaded
        .as_ref()
        .map(|runs| runs.iter().map(|r| r.wall).sum());

    let identical = par_results.iter().zip(&seq).all(|((a, _), b)| *a == b.out)
        && threaded
            .as_ref()
            .is_none_or(|runs| runs.iter().zip(&seq).all(|(a, b)| a.out == b.out));

    let mut per = String::new();
    for (i, e) in chosen.iter().enumerate() {
        if i > 0 {
            per.push(',');
        }
        let s = &seq[i];
        // Event counts are deterministic, so the jobs-1 rerun's count also
        // describes the parallel pass and events/sec is meaningful at both
        // jobs levels. `table1`/`table2` dispatch no simulator events at
        // all; rate and per-event figures are `null` there rather than a
        // fiction divided by 1.
        let threaded_rate = match &threaded {
            Some(runs) => per_event_rate(runs[i].events, runs[i].wall),
            None => "null".to_string(),
        };
        per.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"wall_s_jobs1\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {}, \"events_per_sec_jobs1\": {}, \
             \"events_per_sec_threaded\": {threaded_rate}",
            e.name,
            par_results[i].1,
            s.wall,
            s.events,
            per_event_rate(s.events, par_results[i].1),
            per_event_rate(s.events, s.wall),
        ));
        if alloc_count::enabled() {
            let per_event = if s.events == 0 {
                "null".to_string()
            } else {
                format!("{:.3}", s.allocs as f64 / s.events as f64)
            };
            per.push_str(&format!(
                ", \"allocs\": {}, \"alloc_bytes\": {}, \"peak_bytes\": {}, \
                 \"allocs_per_event\": {per_event}",
                s.allocs, s.alloc_bytes, s.peak_bytes,
            ));
        }
        per.push('}');
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let note = if jobs.max(scale.threads) > host_cpus {
        format!(
            ",\n  \"note\": \"requested {jobs} jobs x {} threads but the host \
             exposes only {host_cpus} CPU(s); jobs and threaded speedups are \
             bounded by available parallelism\"",
            scale.threads
        )
    } else {
        String::new()
    };
    let alloc_summary = if alloc_count::enabled() {
        let allocs: u64 = seq.iter().map(|s| s.allocs).sum();
        let ev: u64 = seq.iter().map(|s| s.events).sum();
        let per_event = if ev == 0 {
            "null".to_string()
        } else {
            format!("{:.3}", allocs as f64 / ev as f64)
        };
        format!(
            ",\n  \"counting_allocator\": true,\n  \"allocs_jobs1\": {allocs},\n  \
             \"allocs_per_event_jobs1\": {per_event}"
        )
    } else {
        ",\n  \"counting_allocator\": false".to_string()
    };
    let fc = ibridge_pvfs::total_fault_counters();
    let fault_counters = format!(
        ",\n  \"fault_counters\": {{\"retries\": {}, \"timeouts\": {}, \
         \"dropped_messages\": {}, \"dirty_bytes_lost\": {}, \
         \"degraded_s\": {:.3}, \"fsck_scanned\": {}, \
         \"fsck_quarantined\": {}, \"stale_t_decisions\": {}, \
         \"mds_elections\": {}, \"mds_leader_changes\": {}, \
         \"mds_failover_recovery_ticks\": {}, \"audits\": {}}}",
        fc.retries,
        fc.timeouts,
        fc.dropped_messages,
        fc.dirty_bytes_lost,
        fc.degraded_ns as f64 / 1e9,
        fc.fsck_records_scanned,
        fc.fsck_records_quarantined,
        fc.stale_t_decisions,
        fc.mds_elections,
        fc.mds_leader_changes,
        fc.mds_failover_recovery_ticks,
        fc.audits,
    );
    // Backup-log maintenance totals (segmented log, checkpoints,
    // compaction, scrub). All zero unless an iBridge run performed
    // maintenance; gauges stay out (they are per-run, not monotone).
    let mc = ibridge_pvfs::total_maint_counters();
    let maint_counters = format!(
        ",\n  \"maint_counters\": {{\"ticks\": {}, \"busy_skips\": {}, \
         \"records_appended\": {}, \"tombstones\": {}, \"supersedes\": {}, \
         \"backup_bytes\": {}, \"segments_sealed\": {}, \
         \"segments_compacted\": {}, \"segments_reclaimed\": {}, \
         \"records_rewritten\": {}, \"rewrite_bytes\": {}, \
         \"checkpoints\": {}, \"checkpoint_records\": {}, \
         \"checkpoint_bytes\": {}, \"scrub_segments\": {}, \
         \"scrub_records\": {}, \"scrub_repairs\": {}}}",
        mc.ticks,
        mc.busy_skips,
        mc.records_appended,
        mc.tombstones,
        mc.supersedes,
        mc.backup_bytes,
        mc.segments_sealed,
        mc.segments_compacted,
        mc.segments_reclaimed,
        mc.records_rewritten,
        mc.rewrite_bytes,
        mc.checkpoints,
        mc.checkpoint_records,
        mc.checkpoint_bytes,
        mc.scrub_segments,
        mc.scrub_records,
        mc.scrub_repairs,
    );
    let obs_fragment = match obs_metrics {
        Some(reg) => format!(",\n{}", ibridge_bench::obs_report::json_fragment(reg)),
        None => String::new(),
    };
    // Threading summary: wall/speedup of the threaded rerun and the
    // barrier synchronisation density of its windows. All `null` when
    // the report ran at --threads 1.
    let threading = match thr_wall {
        Some(tw) => format!(
            ",\n  \"wall_s_threaded\": {tw:.3},\n  \
             \"threaded_speedup\": {:.3},\n  \
             \"windows\": {thr_windows},\n  \"barriers\": {thr_barriers},\n  \
             \"barriers_per_window\": {}",
            seq_wall / tw.max(1e-9),
            if thr_windows == 0 {
                "null".to_string()
            } else {
                format!("{:.4}", thr_barriers as f64 / thr_windows as f64)
            },
        ),
        None => ",\n  \"wall_s_threaded\": null,\n  \"threaded_speedup\": null,\n  \
                 \"windows\": null,\n  \"barriers\": null,\n  \
                 \"barriers_per_window\": null"
            .to_string(),
    };
    let json = format!(
        "{{\n  \"jobs\": {jobs},\n  \"host_cpus\": {host_cpus},\n  \
         \"seed\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \
         \"experiments\": [{per}\n  ],\n  \
         \"wall_s\": {par_wall:.3},\n  \"wall_s_jobs1\": {seq_wall:.3},\n  \
         \"speedup_vs_jobs1\": {:.3}{threading},\n  \
         \"events_dispatched\": {events},\n  \
         \"events_per_sec\": {:.0},\n  \
         \"output_identical_to_jobs1\": {identical}{alloc_summary}\
         {fault_counters}{maint_counters}{obs_fragment}{note}\n}}\n",
        scale.seed,
        scale.shards,
        scale.threads,
        seq_wall / par_wall.max(1e-9),
        events as f64 / par_wall.max(1e-9),
    );
    if let Err(e) = std::fs::write(path, &json) {
        die(&format!("cannot write {path}: {e}"));
    }
    eprintln!(
        "[bench-report: {path} — speedup {:.2}x vs --jobs 1, identical={identical}]",
        seq_wall / par_wall.max(1e-9)
    );
    if !identical {
        die("output at --jobs N differs from --jobs 1 (determinism bug)");
    }
}

/// Events/sec as a JSON value: `null` for experiments that dispatch no
/// simulator events (pure table renders), a rounded rate otherwise.
fn per_event_rate(events: u64, wall_s: f64) -> String {
    if events == 0 {
        "null".to_string()
    } else {
        format!("{:.0}", events as f64 / wall_s.max(1e-9))
    }
}

/// Resolves `--fault-plan`: a builtin name, else a plan file. Parse
/// errors quote the offending line; the process exits non-zero.
fn load_fault_plan(value: &str) -> &'static ibridge_faults::FaultPlan {
    let text = match ibridge_faults::builtin(value) {
        Some(src) => src.to_string(),
        None => std::fs::read_to_string(value).unwrap_or_else(|e| {
            die(&format!(
                "--fault-plan '{value}' is not a builtin plan ({}) and \
                 cannot be read as a file: {e}",
                ibridge_faults::BUILTIN_NAMES.join(", ")
            ))
        }),
    };
    match ibridge_faults::FaultPlan::parse(&text) {
        // One plan per process: leaking keeps `Scale` Copy.
        Ok(plan) => Box::leak(Box::new(plan)),
        Err(e) => die(&format!("--fault-plan {value}: {e}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("expt: {msg}");
    std::process::exit(2);
}

//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatches headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i] + 2);
                let _ = i; // keep column order obvious
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(rule.min(120)));
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = cols;
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.block());
    }

    /// The table as it appears in experiment output: rendered rows plus
    /// the trailing blank line [`print`](Table::print) emits.
    pub fn block(&self) -> String {
        format!("{}\n", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["long-name", "42"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        // The header and rows align: "value" starts at the same column.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
        assert_eq!(lines[4].find("42"), Some(col));
    }

    #[test]
    #[should_panic(expected = "mismatches")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.row_str(&["1"]);
        assert_eq!(t.len(), 1);
    }
}

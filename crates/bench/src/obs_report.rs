//! Rendering of the observability metrics registry.
//!
//! Turns an [`ibridge_obs::metrics::Registry`] snapshot into the text
//! tables printed by `expt --metrics` and into the JSON fragment merged
//! into `--bench-report`. All numbers are virtual-time nanoseconds from
//! the registry; formatting picks a humane unit per value, and the
//! output depends only on the (deterministic) registry contents.

use crate::Table;
use ibridge_obs::metrics::{Phase, Registry, SubClass};
use std::fmt::Write as _;

/// Formats a nanosecond count with an adaptive unit (ns/µs/ms/s).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Formats a byte count with an adaptive unit.
fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

fn mean(sum_ns: u64, n: u64) -> String {
    match sum_ns.checked_div(n) {
        Some(m) => fmt_ns(m),
        None => "-".to_string(),
    }
}

/// Renders the `--metrics` text report: per-phase latency quantiles,
/// per-entry-class service latency, and per-server aggregates with the
/// measured-vs-predicted `T_i` residual. Returns an empty string when
/// nothing was recorded (e.g. the `obs` feature is compiled out).
pub fn render(reg: &Registry) -> String {
    if reg.is_empty() {
        return String::new();
    }
    let mut out = String::new();

    let mut t = Table::new(
        "metrics: phase latency (virtual time)",
        &["phase", "count", "p50", "p95", "p99", "max", "mean"],
    );
    for p in Phase::ALL {
        let h = &reg.phases[p.idx()];
        if h.count() == 0 {
            continue;
        }
        t.row(&[
            p.name().to_string(),
            h.count().to_string(),
            fmt_ns(h.p50().unwrap_or(0)),
            fmt_ns(h.p95().unwrap_or(0)),
            fmt_ns(h.p99().unwrap_or(0)),
            fmt_ns(h.max().unwrap_or(0)),
            fmt_ns(h.mean().unwrap_or(0.0) as u64),
        ]);
    }
    out.push_str(&t.block());

    let mut t = Table::new(
        "metrics: entry classes",
        &["class", "subs", "bytes", "p50", "p99", "max"],
    );
    for c in SubClass::ALL {
        let h = &reg.classes[c.idx()];
        if h.count() == 0 {
            continue;
        }
        t.row(&[
            c.name().to_string(),
            h.count().to_string(),
            fmt_bytes(reg.class_bytes[c.idx()]),
            fmt_ns(h.p50().unwrap_or(0)),
            fmt_ns(h.p99().unwrap_or(0)),
            fmt_ns(h.max().unwrap_or(0)),
        ]);
    }
    if !t.is_empty() {
        out.push_str(&t.block());
    }

    let mut t = Table::new(
        "metrics: servers (T_i = per-request disk busy time)",
        &[
            "server",
            "subs",
            "bytes",
            "disk-mean",
            "ssd-mean",
            "T_i pred",
            "T_i meas",
            "resid%",
        ],
    );
    for (&s, a) in &reg.servers {
        let dash = || "-".to_string();
        let (pred, meas, resid) = match (
            a.ti_pred_ns.checked_div(a.ti_runs),
            a.ti_meas_ns.checked_div(a.ti_runs),
        ) {
            (Some(pred), Some(meas)) => {
                let resid = if meas > 0 {
                    format!("{:+.1}", (pred as f64 - meas as f64) / meas as f64 * 100.0)
                } else {
                    dash()
                };
                (fmt_ns(pred), fmt_ns(meas), resid)
            }
            _ => (dash(), dash(), dash()),
        };
        t.row(&[
            s.to_string(),
            a.subs.to_string(),
            fmt_bytes(a.bytes),
            mean(a.disk_ns, a.disk_subs),
            mean(a.ssd_ns, a.ssd_subs),
            pred,
            meas,
            resid,
        ]);
    }
    if !t.is_empty() {
        out.push_str(&t.block());
    }

    // Threaded-PDES driver balance. Event counts are deterministic;
    // the wall-share column is host wall-clock and varies run to run,
    // so this table only appears when a threaded run happened — never
    // in golden-compared serial output.
    if !reg.pdes.is_empty() {
        let p = &reg.pdes;
        let mut t = Table::new(
            "metrics: pdes threaded driver (wall% is host-dependent)",
            &["lp", "events", "wall%"],
        );
        let total_wall: u64 = p.lp_wall_ns.iter().sum();
        for (i, &ev) in p.lp_events.iter().enumerate() {
            let wall = p.lp_wall_ns.get(i).copied().unwrap_or(0);
            let share = if total_wall == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", wall as f64 / total_wall as f64 * 100.0)
            };
            t.row(&[i.to_string(), ev.to_string(), share]);
        }
        t.row(&[
            format!("{} run(s)", p.runs),
            format!("{} window(s)", p.windows),
            format!("{} barrier(s)", p.barriers),
        ]);
        out.push_str(&t.block());
    }

    // Replicated-MDS counters. Only appears when a run recorded MDS
    // activity (replicated group or stale-T degradation), so existing
    // golden-compared output is unchanged.
    if !reg.mds.is_empty() {
        let m = &reg.mds;
        let mut t = Table::new("metrics: replicated mds", &["counter", "value"]);
        t.row(&["elections".to_string(), m.elections.to_string()]);
        t.row(&["leader-changes".to_string(), m.leader_changes.to_string()]);
        t.row(&["recovery".to_string(), fmt_ns(m.recovery_ticks)]);
        t.row(&[
            "stale-T decisions".to_string(),
            m.stale_t_decisions.to_string(),
        ]);
        t.row(&["proposals".to_string(), m.proposals.to_string()]);
        t.row(&["commits".to_string(), m.commits.to_string()]);
        out.push_str(&t.block());
    }

    // Backup-log maintenance counters. Only appears when a run
    // performed segmented-log maintenance (checkpoint, compaction or
    // scrub activity), so maintenance-free golden output is unchanged.
    if !reg.maint.is_empty() {
        let m = &reg.maint;
        let mut t = Table::new("metrics: backup-log maintenance", &["counter", "value"]);
        t.row(&[
            "ticks (busy-skipped)".to_string(),
            format!("{} ({})", m.ticks, m.busy_skips),
        ]);
        t.row(&[
            "records appended".to_string(),
            format!("{} ({})", m.records_appended, fmt_bytes(m.backup_bytes)),
        ]);
        t.row(&["tombstones".to_string(), m.tombstones.to_string()]);
        t.row(&["supersedes".to_string(), m.supersedes.to_string()]);
        t.row(&[
            "segments sealed/compacted/reclaimed".to_string(),
            format!(
                "{}/{}/{}",
                m.segments_sealed, m.segments_compacted, m.segments_reclaimed
            ),
        ]);
        t.row(&[
            "records rewritten".to_string(),
            format!("{} ({})", m.records_rewritten, fmt_bytes(m.rewrite_bytes)),
        ]);
        t.row(&[
            "checkpoints".to_string(),
            format!(
                "{} ({} records, {})",
                m.checkpoints,
                m.checkpoint_records,
                fmt_bytes(m.checkpoint_bytes)
            ),
        ]);
        t.row(&[
            "scrub segments/records/repairs".to_string(),
            format!(
                "{}/{}/{}",
                m.scrub_segments, m.scrub_records, m.scrub_repairs
            ),
        ]);
        out.push_str(&t.block());
    }
    out
}

/// The metrics registry as a JSON object fragment (no trailing comma or
/// newline) for embedding in the `--bench-report` document. Empty
/// registries produce `"obs_metrics": null`.
pub fn json_fragment(reg: &Registry) -> String {
    if reg.is_empty() {
        return "  \"obs_metrics\": null".to_string();
    }
    let mut out = String::new();
    out.push_str("  \"obs_metrics\": {\n    \"phases\": {\n");
    let mut first = true;
    for p in Phase::ALL {
        let h = &reg.phases[p.idx()];
        if h.count() == 0 {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "      \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            p.name(),
            h.count(),
            h.sum(),
            h.p50().unwrap_or(0),
            h.p95().unwrap_or(0),
            h.p99().unwrap_or(0),
            h.max().unwrap_or(0)
        );
    }
    out.push_str("\n    },\n    \"servers\": {\n");
    let mut first = true;
    for (&s, a) in &reg.servers {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "      \"{}\": {{\"subs\": {}, \"bytes\": {}, \"disk_subs\": {}, \"ssd_subs\": {}, \"ti_pred_ns\": {}, \"ti_meas_ns\": {}, \"ti_runs\": {}}}",
            s, a.subs, a.bytes, a.disk_subs, a.ssd_subs, a.ti_pred_ns, a.ti_meas_ns, a.ti_runs
        );
    }
    out.push_str("\n    }");
    if !reg.pdes.is_empty() {
        let p = &reg.pdes;
        let join = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = write!(
            out,
            ",\n    \"pdes\": {{\"runs\": {}, \"windows\": {}, \"barriers\": {}, \
             \"lp_events\": [{}], \"lp_wall_ns\": [{}]}}",
            p.runs,
            p.windows,
            p.barriers,
            join(&p.lp_events),
            join(&p.lp_wall_ns),
        );
    }
    if !reg.mds.is_empty() {
        let m = &reg.mds;
        let _ = write!(
            out,
            ",\n    \"mds\": {{\"runs\": {}, \"elections\": {}, \"leader_changes\": {}, \
             \"recovery_ticks\": {}, \"stale_t_decisions\": {}, \"proposals\": {}, \
             \"commits\": {}}}",
            m.runs,
            m.elections,
            m.leader_changes,
            m.recovery_ticks,
            m.stale_t_decisions,
            m.proposals,
            m.commits,
        );
    }
    if !reg.maint.is_empty() {
        let m = &reg.maint;
        let _ = write!(
            out,
            ",\n    \"maint\": {{\"runs\": {}, \"ticks\": {}, \"busy_skips\": {}, \
             \"records_appended\": {}, \"tombstones\": {}, \"supersedes\": {}, \
             \"backup_bytes\": {}, \"segments_sealed\": {}, \"segments_compacted\": {}, \
             \"segments_reclaimed\": {}, \"records_rewritten\": {}, \"rewrite_bytes\": {}, \
             \"checkpoints\": {}, \"checkpoint_records\": {}, \"checkpoint_bytes\": {}, \
             \"scrub_segments\": {}, \"scrub_records\": {}, \"scrub_repairs\": {}}}",
            m.runs,
            m.ticks,
            m.busy_skips,
            m.records_appended,
            m.tombstones,
            m.supersedes,
            m.backup_bytes,
            m.segments_sealed,
            m.segments_compacted,
            m.segments_reclaimed,
            m.records_rewritten,
            m.rewrite_bytes,
            m.checkpoints,
            m.checkpoint_records,
            m.checkpoint_bytes,
            m.scrub_segments,
            m.scrub_records,
            m.scrub_repairs,
        );
    }
    out.push_str("\n  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500s");
    }

    #[test]
    fn empty_registry_renders_empty() {
        let reg = Registry::new();
        assert!(render(&reg).is_empty());
        assert_eq!(json_fragment(&reg), "  \"obs_metrics\": null");
    }

    #[test]
    fn populated_registry_renders_tables() {
        let mut reg = Registry::new();
        reg.phases[Phase::Request.idx()].record(1_000_000);
        reg.classes[SubClass::Bulk.idx()].record(500_000);
        reg.class_bytes[SubClass::Bulk.idx()] = 65536;
        let agg = reg.servers.entry(3).or_default();
        agg.subs = 10;
        agg.bytes = 655360;
        agg.disk_ns = 5_000_000;
        agg.disk_subs = 10;
        agg.ti_pred_ns = 900;
        agg.ti_meas_ns = 1000;
        agg.ti_runs = 1;
        let s = render(&reg);
        assert!(s.contains("request"));
        assert!(s.contains("bulk"));
        assert!(s.contains("-10.0"), "residual missing: {s}");
        let j = json_fragment(&reg);
        assert!(j.contains("\"request\""));
        assert!(j.contains("\"ti_runs\": 1"));
    }
}

//! Thread-local allocation counting for the self-benchmark report.
//!
//! The `count-allocs` feature makes the `expt` binary install
//! [`CountingAlloc`] as the global allocator; `--bench-report` then
//! records, for each experiment of the sequential (`--jobs 1`) rerun,
//! how many heap allocations the run performed, the bytes requested,
//! and the peak live heap — turning "the hot path is allocation-free"
//! from a claim into a regression-checked number.
//!
//! Counters are thread-local so worker threads never contend on them;
//! the sequential rerun executes entirely on the calling thread (see
//! `runpar::par_map`), which is what makes per-experiment attribution
//! exact. Without the feature the allocator is never registered and the
//! counters read zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static PEAK: Cell<u64> = const { Cell::new(0) };
}

/// Point-in-time view of this thread's allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Allocations performed (allocs + reallocs count once each).
    pub allocs: u64,
    /// Total bytes requested across all allocations.
    pub bytes: u64,
    /// Bytes currently live.
    pub current: u64,
    /// High-water mark of live bytes since the last [`reset_peak`].
    pub peak: u64,
}

/// Reads this thread's counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocs: ALLOCS.with(Cell::get),
        bytes: BYTES.with(Cell::get),
        current: CURRENT.with(Cell::get),
        peak: PEAK.with(Cell::get),
    }
}

/// Restarts peak tracking from the current live size.
pub fn reset_peak() {
    let cur = CURRENT.with(Cell::get);
    PEAK.with(|p| p.set(cur));
}

/// True when the binary was built with the counting allocator.
pub fn enabled() -> bool {
    cfg!(feature = "count-allocs")
}

#[inline]
fn on_alloc(size: u64) {
    // `try_with`: TLS may be mid-teardown when late destructors allocate.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = BYTES.try_with(|c| c.set(c.get() + size));
    let _ = CURRENT.try_with(|c| {
        let cur = c.get() + size;
        c.set(cur);
        let _ = PEAK.try_with(|p| {
            if cur > p.get() {
                p.set(cur);
            }
        });
    });
}

#[inline]
fn on_dealloc(size: u64) {
    let _ = CURRENT.try_with(|c| c.set(c.get().saturating_sub(size)));
}

/// A [`System`]-backed global allocator that keeps per-thread counters.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the bookkeeping around
// the delegation does not allocate (thread-local `Cell`s only).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size() as u64);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_dealloc(layout.size() as u64);
        on_alloc(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

//! Crash-consistent recovery & log corruption (beyond the paper).
//!
//! The paper's durability story (Sec. III-D) rests on the on-SSD
//! mapping-table backup surviving real crashes. This experiment
//! exercises the two halves of that story:
//!
//! 1. **Corruption matrix** — the checkpoint workload runs under the
//!    corruption fault plans (`torn-write`, `bit-rot`, `mds-crash`)
//!    against the faultless baseline, reporting what the restart's
//!    recovery fsck scanned, quarantined, and lost (dirty bytes that
//!    corruption destroyed before the writeback daemon flushed them).
//! 2. **Parallel fsck** — an offline backup image of several thousand
//!    sealed records, seeded with torn and bit-rotted victims, is
//!    verified twice: serially, and fanned out over fixed-size segments
//!    on the [`crate::runpar`] pool (pFSCK-style). The verdicts must be
//!    identical — the verify pass is pure per record, so parallelism
//!    changes wall clock only, never a single verdict.
//!
//! Fault schedules, corruption placement and the synthetic backup all
//! derive from the experiment seed, so the output is byte-identical at
//! any `--jobs` level.

use crate::runpar::par_map;
use crate::{Scale, Table, FILE_A};
use ibridge_core::record::{self, LogRecord, RecordVerdict, SealedRecord};
use ibridge_core::{ibridge_cluster, EntryType};
use ibridge_des::SimDuration;
use ibridge_faults::{builtin, FaultPlan};
use ibridge_localfs::{Extent, ExtentList};
use ibridge_pvfs::{ClusterConfig, RunStats, ServerConfig};
use ibridge_workloads::CheckpointWorkload;

/// The corruption plans this table covers, against the faultless
/// baseline. A fixed list: the CI corruption-matrix golden pins these
/// rows byte-for-byte.
const PLANS: &[&str] = &["none", "torn-write", "bit-rot", "mds-crash"];

/// Synthetic backup size for the parallel-fsck pass.
const BACKUP_RECORDS: u64 = 4096;
/// Records per verify segment handed to one worker.
const SEGMENT_RECORDS: usize = 256;

/// Same probe shape as the `faults` experiment: small enough that the
/// corruption plans' fault windows (100–150 ms) land mid-run. The
/// T-report cadence is shortened from its 1 s default so the
/// `mds-crash` downtime window (80–200 ms) demonstrably stalls
/// broadcasts within the probe's few-hundred-ms run.
fn probe(scale: &Scale, plan: &FaultPlan) -> RunStats {
    let cfg = ClusterConfig {
        n_servers: 4,
        seed: scale.seed,
        shards: scale.shards,
        audit_interval: scale.audit_interval,
        report_interval: SimDuration::from_millis(20),
        server: ServerConfig {
            ra_budget: scale.page_cache,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut cluster = ibridge_cluster(cfg, scale.ssd_capacity);
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        4,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(plan);
    cluster.run(&mut w)
}

/// `splitmix64` step — deterministic victim placement from the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds an on-media backup image of `n` sealed records and damages a
/// deterministic subset: roughly 1 in 31 torn, 1 in 37 bit-rotted.
fn synthetic_backup(n: u64, seed: u64) -> Vec<SealedRecord> {
    let mut rng = seed;
    (0..n)
        .map(|seq| {
            let len = 1024 + (splitmix64(&mut rng) % 63) * 512;
            let mut sealed = LogRecord {
                seq,
                entry: seq,
                file: FILE_A,
                offset: seq << 20,
                len,
                typ: if seq % 3 == 0 {
                    EntryType::Random
                } else {
                    EntryType::Fragment
                },
                ret: 1e-4 * (seq % 100) as f64,
                dirty: seq % 2 == 0,
                tombstone: false,
                extents: ExtentList::one(Extent {
                    lbn: seq * 128,
                    sectors: len.div_ceil(512),
                }),
            }
            .seal();
            match splitmix64(&mut rng) % 1151 {
                r if r % 31 == 0 => sealed.tear(),
                r if r % 37 == 0 => sealed.flip_bit(splitmix64(&mut rng)),
                _ => {}
            }
            sealed
        })
        .collect()
}

/// The `recovery` experiment: corruption matrix plus the parallel fsck.
pub fn run(scale: &Scale) -> String {
    // -- Corruption matrix -------------------------------------------
    let plans: Vec<(String, FaultPlan)> = PLANS
        .iter()
        .map(|&name| {
            let text = builtin(name).expect("builtin listed");
            let plan = FaultPlan::parse(text).expect("builtin parses");
            (name.to_string(), plan)
        })
        .collect();
    let results = par_map(plans.clone(), |(_, plan)| probe(scale, &plan));

    let mut t = Table::new(
        "Recovery — checkpoint workload under log corruption (iBridge, 4 servers)",
        &[
            "plan",
            "MB/s",
            "crashes",
            "fsck-scanned",
            "quarantined",
            "dirty-lost-KB",
            "stalled-bcasts",
        ],
    );
    for ((name, _), stats) in plans.iter().zip(&results) {
        let f = &stats.faults;
        t.row(&[
            name.clone(),
            format!("{:.1}", stats.throughput_mbps()),
            (f.crashes + f.mds_crashes).to_string(),
            f.fsck_records_scanned.to_string(),
            f.fsck_records_quarantined.to_string(),
            format!("{:.1}", f.dirty_bytes_lost as f64 / 1024.0),
            f.stalled_broadcasts.to_string(),
        ]);
    }

    // -- Parallel fsck over an offline backup image ------------------
    let backup = synthetic_backup(BACKUP_RECORDS, scale.seed);
    let serial = record::verify_segment(&backup);
    let segments: Vec<Vec<SealedRecord>> =
        backup.chunks(SEGMENT_RECORDS).map(|c| c.to_vec()).collect();
    let n_segments = segments.len();
    let parallel: Vec<RecordVerdict> = par_map(segments, |seg| record::verify_segment(&seg))
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(
        parallel, serial,
        "segmented fsck verdicts must match the serial scan"
    );
    let count = |want: fn(&RecordVerdict) -> bool| serial.iter().filter(|v| want(v)).count();
    let intact = count(|v| matches!(v, RecordVerdict::Intact(_)));
    let torn = count(|v| matches!(v, RecordVerdict::Torn));
    let corrupt = count(|v| matches!(v, RecordVerdict::Corrupt));

    format!(
        "{}Corruption plans tear or bit-rot the on-SSD mapping-table \
         backup; the restart's recovery fsck verifies per-record CRCs \
         and sequence continuity, quarantining what fails \
         ('quarantined') and counting unrecoverable dirty bytes as the \
         durability cost. 'mds-crash' loses no data: servers keep \
         serving on last-known T-values while broadcasts stall.\n\n\
         Parallel fsck: {BACKUP_RECORDS} sealed records scanned in \
         {n_segments} segments of {SEGMENT_RECORDS} on the shared \
         worker pool — {intact} intact, {torn} torn, {corrupt} \
         corrupt; segmented verdicts byte-identical to the serial \
         scan.\n\n",
        t.block()
    )
}

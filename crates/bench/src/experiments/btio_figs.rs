//! Figs. 9–11: the BTIO macro-benchmark.

use crate::runpar::par_map;
use crate::{build, build_ibridge_with, Scale, System, Table, FILE_A};
use ibridge_core::IBridgeConfig;
use ibridge_pvfs::RunStats;
use ibridge_workloads::Btio;

fn btio(scale: &Scale, procs: usize) -> Btio {
    // Compute time calibrated so the stock system spends ~58% of its
    // execution in I/O, as the paper reports; it scales with the data
    // set so `--full` keeps the same balance.
    let compute_secs = 10.0 * scale.btio_bytes as f64 / (96u64 << 20) as f64;
    Btio::new(
        FILE_A,
        procs,
        scale.btio_bytes,
        16,
        ibridge_des::SimDuration::from_secs_f64(compute_secs),
    )
}

fn run_system(scale: &Scale, procs: usize, system: System) -> RunStats {
    let mut cluster = build(system, 8, scale);
    let mut w = btio(scale, procs);
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.run(&mut w)
}

fn secs(stats: &RunStats) -> f64 {
    stats.elapsed.as_secs_f64()
}

/// Fig. 9: execution time vs process count, stock vs iBridge.
pub fn fig9(scale: &Scale) -> String {
    let procs_list = [9usize, 16, 64, 100];
    let mut t = Table::new(
        "Fig 9 — BTIO execution time (s) vs process count",
        &[
            "procs",
            "req-size",
            "stock",
            "iBridge",
            "reduction",
            "stock-io%",
            "iBridge-io%",
        ],
    );
    let jobs: Vec<(usize, System)> = procs_list
        .iter()
        .flat_map(|&p| [(p, System::Stock), (p, System::IBridge)])
        .collect();
    let results = par_map(jobs, |(procs, system)| run_system(scale, procs, system));
    for (idx, &procs) in procs_list.iter().enumerate() {
        let (stock, ib) = (&results[2 * idx], &results[2 * idx + 1]);
        let io_frac = |s: &RunStats| {
            let total = s.io_time + s.think_time;
            if total == ibridge_des::SimDuration::ZERO {
                0.0
            } else {
                s.io_time.as_secs_f64() / total.as_secs_f64() * 100.0
            }
        };
        t.row(&[
            procs.to_string(),
            format!("{}B", Btio::request_size_for(procs)),
            format!("{:.1}", secs(stock)),
            format!("{:.1}", secs(ib)),
            format!("{:.0}%", (secs(stock) - secs(ib)) / secs(stock) * 100.0),
            format!("{:.0}%", io_frac(stock)),
            format!("{:.0}%", io_frac(ib)),
        ]);
    }
    format!(
        "{}paper: execution times drop 45/55/61/59% at 9/16/64/100 procs; \
         the I/O share of execution falls from 58% to 4% on average.\n\n",
        t.block()
    )
}

/// Fig. 10: disk-only vs SSD-only vs iBridge.
pub fn fig10(scale: &Scale) -> String {
    let procs_list = [9usize, 16, 64, 100];
    let mut t = Table::new(
        "Fig 10 — BTIO execution time and I/O time (s): storage variants",
        &[
            "procs",
            "disk-only",
            "SSD-only",
            "iBridge",
            "io:disk",
            "io:SSD-only",
            "io:iBridge",
        ],
    );
    let jobs: Vec<(usize, System)> = procs_list
        .iter()
        .flat_map(|&p| {
            [
                (p, System::Stock),
                (p, System::SsdOnly),
                (p, System::IBridge),
            ]
        })
        .collect();
    let results = par_map(jobs, |(procs, system)| run_system(scale, procs, system));
    for (idx, &procs) in procs_list.iter().enumerate() {
        let (disk, ssd, ib) = (
            &results[3 * idx],
            &results[3 * idx + 1],
            &results[3 * idx + 2],
        );
        let io = |s: &RunStats| s.io_time.as_secs_f64() / procs as f64;
        t.row(&[
            procs.to_string(),
            format!("{:.1}", secs(disk)),
            format!("{:.1}", secs(ssd)),
            format!("{:.1}", secs(ib)),
            format!("{:.1}", io(disk)),
            format!("{:.2}", io(ssd)),
            format!("{:.2}", io(ib)),
        ]);
    }
    format!(
        "{}paper: iBridge beats even SSD-only storage — its log-structured \
         writes run at the SSD's sequential bandwidth (140 MB/s) while \
         SSD-only placement writes randomly (30 MB/s).\n\n",
        t.block()
    )
}

/// Fig. 11: I/O time as the per-server SSD cache shrinks (paper sweeps
/// 8 GB → 0 GB against a 6.8 GB data set; the scaled sweep keeps the
/// same capacity/data ratios).
pub fn fig11(scale: &Scale) -> String {
    let ratios: [(f64, &str); 5] = [
        (1.18, "8GB-equiv"),
        (0.59, "4GB-equiv"),
        (0.29, "2GB-equiv"),
        (0.15, "1GB-equiv"),
        (0.0, "0GB"),
    ];
    let procs = 64;
    let mut t = Table::new(
        "Fig 11 — BTIO I/O time (s) vs per-server SSD capacity",
        &["capacity", "io-time", "exec-time", "vs-full"],
    );
    let results = par_map(ratios.to_vec(), |(ratio, _)| {
        let capacity = ((scale.btio_bytes as f64 * ratio) as u64 / 8).max(1);
        let mut cluster = build_ibridge_with(8, scale, 20 << 10, move |id| {
            IBridgeConfig::with_capacity(id, capacity)
        });
        let mut w = btio(scale, procs);
        cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
        cluster.run(&mut w)
    });
    let first_io = results[0].io_time.as_secs_f64() / procs as f64;
    for ((_, label), stats) in ratios.iter().zip(&results) {
        let io = stats.io_time.as_secs_f64() / procs as f64;
        t.row(&[
            label.to_string(),
            format!("{io:.2}"),
            format!("{:.1}", secs(stats)),
            format!("{:.1}x", io / first_io),
        ]);
    }
    format!(
        "{}paper: I/O time grows almost linearly as the cache shrinks and is \
         12x longer at 0 GB, while total execution time grows only 2.2x \
         (computation is significant).\n\n",
        t.block()
    )
}

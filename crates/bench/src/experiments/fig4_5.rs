//! Figs. 4 and 5: mpi-io-test with iBridge.

use crate::experiments::fig2::render_hist;
use crate::runpar::par_map;
use crate::{mbps, pct, run_once, run_warm, Scale, System, Table, FILE_A};
use ibridge_device::IoDir;
use ibridge_pvfs::RunStats;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

/// One mpi-io-test configuration of the Fig. 4 x-axis.
#[derive(Debug, Clone, Copy)]
struct Config {
    label: &'static str,
    size: u64,
    shift: u64,
}

const CONFIGS: [Config; 6] = [
    Config {
        label: "33KB",
        size: 33 * KB,
        shift: 0,
    },
    Config {
        label: "65KB",
        size: 65 * KB,
        shift: 0,
    },
    Config {
        label: "129KB",
        size: 129 * KB,
        shift: 0,
    },
    Config {
        label: "64KB+0",
        size: 64 * KB,
        shift: 0,
    },
    Config {
        label: "64KB+1K",
        size: 64 * KB,
        shift: KB,
    },
    Config {
        label: "64KB+10K",
        size: 64 * KB,
        shift: 10 * KB,
    },
];

fn measure(scale: &Scale, dir: IoDir, c: Config, system: System) -> RunStats {
    let procs = 64;
    let make =
        || MpiIoTest::sized(dir, FILE_A, procs, c.size, scale.stream_bytes).with_shift(c.shift);
    let span = make().span_bytes();
    if dir.is_read() && system == System::IBridge {
        // Reads profit from pre-loaded fragments: measure the warm run.
        run_warm(system, 8, scale, span, &mut || Box::new(make()))
    } else {
        run_once(system, 8, scale, span, &mut make())
    }
}

/// Fig. 4(a,b): stock vs iBridge across sizes and offsets, 64 procs.
pub fn fig4(scale: &Scale) -> String {
    let mut out = String::new();
    for (dir, label, paper) in [
        (
            IoDir::Write,
            "Fig 4(a) — mpi-io-test WRITE throughput (MB/s), 64 procs",
            "paper: iBridge improves 33/65/129KB writes by 105/183/171%; \
             aligned ref 167 MB/s; SSD serves 19/10/4% of data",
        ),
        (
            IoDir::Read,
            "Fig 4(b) — mpi-io-test READ throughput (MB/s), 64 procs (iBridge warm)",
            "paper: reads show the same trend; stock loses 40% at non-zero offsets",
        ),
    ] {
        let mut t = Table::new(
            label,
            &["config", "stock", "iBridge", "improvement", "ssd-bytes"],
        );
        // One job per (config, system) pair; rows pair them back up.
        let jobs: Vec<(Config, System)> = CONFIGS
            .into_iter()
            .flat_map(|c| [(c, System::Stock), (c, System::IBridge)])
            .collect();
        let results = par_map(jobs, |(c, system)| measure(scale, dir, c, system));
        for (idx, c) in CONFIGS.into_iter().enumerate() {
            let (stock, ib) = (&results[2 * idx], &results[2 * idx + 1]);
            let s = stock.throughput_mbps();
            let i = ib.throughput_mbps();
            t.row(&[
                c.label.to_string(),
                mbps(s),
                mbps(i),
                format!("{:+.0}%", (i - s) / s * 100.0),
                pct(ib.ssd_served_fraction() * 100.0),
            ]);
        }
        out += &t.block();
        out += &format!("{paper}\n\n");
    }
    out
}

/// Fig. 5: block-level dispatch sizes with iBridge for 64 KB + 10 KB
/// offset reads (compare with the stock distribution of Fig. 2(e)).
pub fn fig5(scale: &Scale) -> String {
    let c = Config {
        label: "64KB+10K",
        size: 64 * KB,
        shift: 10 * KB,
    };
    let stats = measure(scale, IoDir::Read, c, System::IBridge);
    let mut out = render_hist(
        "Fig 5 — dispatch sizes with iBridge, 64 KB + 10 KB offset reads \
         (paper: 128- and 256-sector requests predominate)",
        &stats.combined_read_hist(),
        8,
    );
    let below = stats.combined_read_hist().fraction_below(108);
    out += &format!(
        "share of dispatches below 108 sectors (the 54 KB piece size): {:.0}%\n\n",
        below * 100.0
    );
    out
}

//! Tables I, II and III.

use crate::{build, mbps, System, Table, FILE_A, Scale};
use ibridge_device::microbench::{bench_disk, bench_ssd, BenchConfig};
use ibridge_device::{DiskProfile, SsdProfile};
use ibridge_workloads::{classify, AppProfile, Trace, TraceReplay};

/// Table I: percentages of unaligned and random accesses in the traces.
pub fn table1(scale: &Scale) {
    let paper = [(35.2, 7.3), (35.7, 6.9), (24.3, 30.1), (62.8, 5.8)];
    let mut t = Table::new(
        "Table I — unaligned/random request percentages (64 KB unit, 20 KB threshold)",
        &[
            "app",
            "unaligned%",
            "random%",
            "total%",
            "paper-unaligned%",
            "paper-random%",
        ],
    );
    for (profile, (pu, pr)) in AppProfile::table1().iter().zip(paper) {
        let trace = Trace::synthesize(profile, scale.trace_requests, 1 << 30, scale.seed);
        let c = classify(&trace.records, 64 << 10, 20 << 10);
        t.row(&[
            profile.name.to_string(),
            format!("{:.1}", c.unaligned_pct),
            format!("{:.1}", c.random_pct),
            format!("{:.1}", c.total_pct),
            format!("{pu:.1}"),
            format!("{pr:.1}"),
        ]);
    }
    t.print();
}

/// Table II: 4 KB-request device bandwidths.
pub fn table2(_scale: &Scale) {
    let cfg = BenchConfig::default();
    let disk = bench_disk(&DiskProfile::hp_mm0500(), &cfg);
    let ssd = bench_ssd(&SsdProfile::hp_mk0120(), &cfg);
    let mut t = Table::new(
        "Table II — device microbenchmark, 4 KB requests (MB/s)",
        &["mode", "SSD", "paper-SSD", "disk", "paper-disk"],
    );
    let rows = [
        ("sequential read", ssd.seq_read, 160.0, disk.seq_read, 85.0),
        ("random read", ssd.rand_read, 60.0, disk.rand_read, 15.0),
        ("sequential write", ssd.seq_write, 140.0, disk.seq_write, 80.0),
        ("random write", ssd.rand_write, 30.0, disk.rand_write, 5.0),
    ];
    for (mode, s, ps, d, pd) in rows {
        t.row(&[
            mode.to_string(),
            mbps(s),
            mbps(ps),
            mbps(d),
            mbps(pd),
        ]);
    }
    t.print();
    println!(
        "note: the disk's random rows are QD32 NCQ results; the paper's \
         unusually high 15/5 MB/s suggest additional caching on their SAS \
         drive — the orderings and the seq/rand gaps are the reproduced shape.\n"
    );
}

/// Table III: average request service time of the replayed traces.
pub fn table3(scale: &Scale) {
    let paper = [(16.6, 14.2), (17.2, 14.0), (19.4, 14.4), (36.0, 25.3)];
    let mut t = Table::new(
        "Table III — trace replay, average request service time (ms)",
        &[
            "trace",
            "stock",
            "iBridge",
            "improvement",
            "paper-stock",
            "paper-iBridge",
        ],
    );
    for (profile, (ps, pi)) in AppProfile::table1().iter().zip(paper) {
        let span = 1 << 30;
        let trace = Trace::synthesize(profile, scale.trace_requests, span, scale.seed);
        let mut times = Vec::new();
        for system in [System::Stock, System::IBridge] {
            let mut cluster = build(system, 8, scale);
            cluster.preallocate(FILE_A, span + (1 << 20));
            let mut w = TraceReplay::new(trace.clone(), FILE_A);
            let stats = cluster.run(&mut w);
            times.push(stats.latency_ms.mean().unwrap_or(0.0));
        }
        let imp = (times[0] - times[1]) / times[0] * 100.0;
        t.row(&[
            profile.name.to_string(),
            format!("{:.1}", times[0]),
            format!("{:.1}", times[1]),
            format!("{imp:.1}%"),
            format!("{ps:.1}"),
            format!("{pi:.1}"),
        ]);
    }
    t.print();
}

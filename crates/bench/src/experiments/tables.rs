//! Tables I, II and III.

use crate::runpar::par_map;
use crate::{build, mbps, Scale, System, Table, FILE_A};
use ibridge_device::microbench::{bench_disk, bench_ssd, BenchConfig};
use ibridge_device::{DiskProfile, SsdProfile};
use ibridge_workloads::{classify, AppProfile, Trace, TraceReplay};

/// Table I: percentages of unaligned and random accesses in the traces.
pub fn table1(scale: &Scale) -> String {
    let paper = [(35.2, 7.3), (35.7, 6.9), (24.3, 30.1), (62.8, 5.8)];
    let mut t = Table::new(
        "Table I — unaligned/random request percentages (64 KB unit, 20 KB threshold)",
        &[
            "app",
            "unaligned%",
            "random%",
            "total%",
            "paper-unaligned%",
            "paper-random%",
        ],
    );
    let profiles = AppProfile::table1();
    let jobs: Vec<(&AppProfile, (f64, f64))> = profiles.iter().zip(paper).collect();
    let rows = par_map(jobs, |(profile, (pu, pr))| {
        let trace = Trace::synthesize(profile, scale.trace_requests, 1 << 30, scale.seed);
        let c = classify(&trace.records, 64 << 10, 20 << 10);
        vec![
            profile.name.to_string(),
            format!("{:.1}", c.unaligned_pct),
            format!("{:.1}", c.random_pct),
            format!("{:.1}", c.total_pct),
            format!("{pu:.1}"),
            format!("{pr:.1}"),
        ]
    });
    for row in rows {
        t.row(&row);
    }
    t.block()
}

/// Table II: 4 KB-request device bandwidths.
pub fn table2(_scale: &Scale) -> String {
    let cfg = BenchConfig::default();
    let (disk, ssd) = {
        let mut results = par_map(vec![true, false], |is_disk| {
            if is_disk {
                (Some(bench_disk(&DiskProfile::hp_mm0500(), &cfg)), None)
            } else {
                (None, Some(bench_ssd(&SsdProfile::hp_mk0120(), &cfg)))
            }
        });
        let (d, _) = results.remove(0);
        let (_, s) = results.remove(0);
        (d.unwrap(), s.unwrap())
    };
    let mut t = Table::new(
        "Table II — device microbenchmark, 4 KB requests (MB/s)",
        &["mode", "SSD", "paper-SSD", "disk", "paper-disk"],
    );
    let rows = [
        ("sequential read", ssd.seq_read, 160.0, disk.seq_read, 85.0),
        ("random read", ssd.rand_read, 60.0, disk.rand_read, 15.0),
        (
            "sequential write",
            ssd.seq_write,
            140.0,
            disk.seq_write,
            80.0,
        ),
        ("random write", ssd.rand_write, 30.0, disk.rand_write, 5.0),
    ];
    for (mode, s, ps, d, pd) in rows {
        t.row(&[mode.to_string(), mbps(s), mbps(ps), mbps(d), mbps(pd)]);
    }
    format!(
        "{}note: the disk's random rows are QD32 NCQ results; the paper's \
         unusually high 15/5 MB/s suggest additional caching on their SAS \
         drive — the orderings and the seq/rand gaps are the reproduced shape.\n\n",
        t.block()
    )
}

/// Table III: average request service time of the replayed traces.
pub fn table3(scale: &Scale) -> String {
    let paper = [(16.6, 14.2), (17.2, 14.0), (19.4, 14.4), (36.0, 25.3)];
    let mut t = Table::new(
        "Table III — trace replay, average request service time (ms)",
        &[
            "trace",
            "stock",
            "iBridge",
            "improvement",
            "paper-stock",
            "paper-iBridge",
        ],
    );
    // One job per (trace, system) replay; joined back in pairs per trace.
    let profiles = AppProfile::table1();
    let jobs: Vec<(&AppProfile, System)> = profiles
        .iter()
        .flat_map(|p| [(p, System::Stock), (p, System::IBridge)])
        .collect();
    let times = par_map(jobs, |(profile, system)| {
        let span = 1 << 30;
        let trace = Trace::synthesize(profile, scale.trace_requests, span, scale.seed);
        let mut cluster = build(system, 8, scale);
        cluster.preallocate(FILE_A, span + (1 << 20));
        let mut w = TraceReplay::new(trace, FILE_A);
        let stats = cluster.run(&mut w);
        stats.latency_ms.mean().unwrap_or(0.0)
    });
    for (i, (profile, (ps, pi))) in profiles.iter().zip(paper).enumerate() {
        let (stock, ib) = (times[2 * i], times[2 * i + 1]);
        let imp = (stock - ib) / stock * 100.0;
        t.row(&[
            profile.name.to_string(),
            format!("{stock:.1}"),
            format!("{ib:.1}"),
            format!("{imp:.1}%"),
            format!("{ps:.1}"),
            format!("{pi:.1}"),
        ]);
    }
    t.block()
}

//! Fig. 2: the stock system under unaligned access — throughputs and
//! block-level request-size distributions.

use crate::runpar::par_map;
use crate::{mbps, run_once, Scale, System, Table, FILE_A};
use ibridge_des::stats::Histogram;
use ibridge_device::IoDir;
use ibridge_pvfs::RunStats;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

fn procs_list(scale: &Scale) -> Vec<usize> {
    if scale.stream_bytes >= 1 << 30 {
        vec![16, 64, 128, 512]
    } else {
        vec![16, 64, 512]
    }
}

/// Fig. 2(a): reads of {64,65,74,84,94} KB across process counts
/// (Pattern II; 64 KB is the aligned Pattern I reference).
pub fn fig2a(scale: &Scale) -> String {
    let sizes = [64u64, 65, 74, 84, 94];
    let mut t = Table::new(
        "Fig 2(a) — stock read throughput (MB/s), Pattern II",
        &["procs", "64KB", "65KB", "74KB", "84KB", "94KB"],
    );
    let jobs: Vec<(usize, u64)> = procs_list(scale)
        .into_iter()
        .flat_map(|procs| sizes.iter().map(move |&size| (procs, size)))
        .collect();
    let cells = par_map(jobs, |(procs, size)| {
        let mut w = MpiIoTest::sized(IoDir::Read, FILE_A, procs, size * KB, scale.stream_bytes);
        let span = w.span_bytes();
        let stats = run_once(System::Stock, 8, scale, span, &mut w);
        mbps(stats.throughput_mbps())
    });
    for (i, procs) in procs_list(scale).into_iter().enumerate() {
        let mut row = vec![procs.to_string()];
        row.extend_from_slice(&cells[i * sizes.len()..(i + 1) * sizes.len()]);
        t.row(&row);
    }
    format!(
        "{}paper: 16 procs: 64KB=159.6, 65KB=77.4 (-52%), 74KB=88.1 (-45%); \
         aligned falls to 116.2 at 512 procs.\n\n",
        t.block()
    )
}

/// Fig. 2(b): 64 KB reads with request offsets (Pattern III).
pub fn fig2b(scale: &Scale) -> String {
    let offsets = [0u64, 1, 10, 32];
    let mut t = Table::new(
        "Fig 2(b) — stock read throughput (MB/s), 64 KB requests with offset",
        &["procs", "+0KB", "+1KB", "+10KB", "+32KB"],
    );
    let jobs: Vec<(usize, u64)> = procs_list(scale)
        .into_iter()
        .flat_map(|procs| offsets.iter().map(move |&off| (procs, off)))
        .collect();
    let cells = par_map(jobs, |(procs, off)| {
        let mut w = MpiIoTest::sized(IoDir::Read, FILE_A, procs, 64 * KB, scale.stream_bytes)
            .with_shift(off * KB);
        let span = w.span_bytes();
        let stats = run_once(System::Stock, 8, scale, span, &mut w);
        mbps(stats.throughput_mbps())
    });
    for (i, procs) in procs_list(scale).into_iter().enumerate() {
        let mut row = vec![procs.to_string()];
        row.extend_from_slice(&cells[i * offsets.len()..(i + 1) * offsets.len()]);
        t.row(&row);
    }
    format!(
        "{}paper: 512 procs: +1KB −36% (159.6→102.1), +10KB −49% (→81.8); \
         +1KB hurts least (63 KB fragments are nearly full units).\n\n",
        t.block()
    )
}

/// Renders the `top` most frequent dispatch sizes of a histogram.
pub fn render_hist(title: &str, h: &Histogram, top: usize) -> String {
    let mut t = Table::new(title, &["sectors", "KB", "count", "share"]);
    for (sectors, count) in h.top_k(top) {
        t.row(&[
            sectors.to_string(),
            format!("{:.1}", sectors as f64 / 2.0),
            count.to_string(),
            format!("{:.1}%", count as f64 * 100.0 / h.total() as f64),
        ]);
    }
    t.block()
}

fn dist_run(scale: &Scale, size: u64, shift: u64) -> RunStats {
    let mut w =
        MpiIoTest::sized(IoDir::Read, FILE_A, 16, size, scale.stream_bytes / 2).with_shift(shift);
    let span = w.span_bytes();
    run_once(System::Stock, 8, scale, span, &mut w)
}

/// Fig. 2(c,d,e): block-level request size distributions (sector units)
/// for aligned 64 KB, 65 KB, and 64 KB + 10 KB-offset reads.
pub fn fig2cde(scale: &Scale) -> String {
    let runs = par_map(
        vec![(64 * KB, 0), (65 * KB, 0), (64 * KB, 10 * KB)],
        |(size, shift)| dist_run(scale, size, shift),
    );
    let (c, d, e) = (&runs[0], &runs[1], &runs[2]);
    let mut out = String::new();
    out += &render_hist(
        "Fig 2(c) — dispatch sizes, aligned 64 KB reads (paper: 72% at 128 sectors, 18% at 256)",
        &c.combined_read_hist(),
        8,
    );
    out += &render_hist(
        "Fig 2(d) — dispatch sizes, 65 KB reads (paper: mass shifts to small sizes)",
        &d.combined_read_hist(),
        8,
    );
    out += &render_hist(
        "Fig 2(e) — dispatch sizes, 64 KB + 10 KB offset (paper: modes at 80 and 176 sectors)",
        &e.combined_read_hist(),
        8,
    );
    let frac_small = |h: &Histogram| h.fraction_below(128);
    out += &format!(
        "share of dispatches below 128 sectors: aligned {:.0}%, 65KB {:.0}%, +10KB {:.0}%\n\n",
        frac_small(&c.combined_read_hist()) * 100.0,
        frac_small(&d.combined_read_hist()) * 100.0,
        frac_small(&e.combined_read_hist()) * 100.0,
    );
    out
}

//! Fig. 2: the stock system under unaligned access — throughputs and
//! block-level request-size distributions.

use crate::{mbps, run_once, Scale, System, Table, FILE_A};
use ibridge_des::stats::Histogram;
use ibridge_device::IoDir;
use ibridge_pvfs::RunStats;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

fn procs_list(scale: &Scale) -> Vec<usize> {
    if scale.stream_bytes >= 1 << 30 {
        vec![16, 64, 128, 512]
    } else {
        vec![16, 64, 512]
    }
}

/// Fig. 2(a): reads of {64,65,74,84,94} KB across process counts
/// (Pattern II; 64 KB is the aligned Pattern I reference).
pub fn fig2a(scale: &Scale) {
    let sizes = [64, 65, 74, 84, 94];
    let mut t = Table::new(
        "Fig 2(a) — stock read throughput (MB/s), Pattern II",
        &["procs", "64KB", "65KB", "74KB", "84KB", "94KB"],
    );
    for procs in procs_list(scale) {
        let mut row = vec![procs.to_string()];
        for size in sizes {
            let mut w =
                MpiIoTest::sized(IoDir::Read, FILE_A, procs, size * KB, scale.stream_bytes);
            let span = w.span_bytes();
            let stats = run_once(System::Stock, 8, scale, span, &mut w);
            row.push(mbps(stats.throughput_mbps()));
        }
        t.row(&row);
    }
    t.print();
    println!(
        "paper: 16 procs: 64KB=159.6, 65KB=77.4 (-52%), 74KB=88.1 (-45%); \
         aligned falls to 116.2 at 512 procs.\n"
    );
}

/// Fig. 2(b): 64 KB reads with request offsets (Pattern III).
pub fn fig2b(scale: &Scale) {
    let offsets = [0u64, 1, 10, 32];
    let mut t = Table::new(
        "Fig 2(b) — stock read throughput (MB/s), 64 KB requests with offset",
        &["procs", "+0KB", "+1KB", "+10KB", "+32KB"],
    );
    for procs in procs_list(scale) {
        let mut row = vec![procs.to_string()];
        for off in offsets {
            let mut w = MpiIoTest::sized(IoDir::Read, FILE_A, procs, 64 * KB, scale.stream_bytes)
                .with_shift(off * KB);
            let span = w.span_bytes();
            let stats = run_once(System::Stock, 8, scale, span, &mut w);
            row.push(mbps(stats.throughput_mbps()));
        }
        t.row(&row);
    }
    t.print();
    println!(
        "paper: 512 procs: +1KB −36% (159.6→102.1), +10KB −49% (→81.8); \
         +1KB hurts least (63 KB fragments are nearly full units).\n"
    );
}

/// Prints the `top` most frequent dispatch sizes of a histogram.
pub fn print_hist(title: &str, h: &Histogram, top: usize) {
    let mut t = Table::new(title, &["sectors", "KB", "count", "share"]);
    for (sectors, count) in h.top_k(top) {
        t.row(&[
            sectors.to_string(),
            format!("{:.1}", sectors as f64 / 2.0),
            count.to_string(),
            format!("{:.1}%", count as f64 * 100.0 / h.total() as f64),
        ]);
    }
    t.print();
}

fn dist_run(scale: &Scale, size: u64, shift: u64) -> RunStats {
    let mut w = MpiIoTest::sized(IoDir::Read, FILE_A, 16, size, scale.stream_bytes / 2)
        .with_shift(shift);
    let span = w.span_bytes();
    run_once(System::Stock, 8, scale, span, &mut w)
}

/// Fig. 2(c,d,e): block-level request size distributions (sector units)
/// for aligned 64 KB, 65 KB, and 64 KB + 10 KB-offset reads.
pub fn fig2cde(scale: &Scale) {
    let c = dist_run(scale, 64 * KB, 0);
    print_hist(
        "Fig 2(c) — dispatch sizes, aligned 64 KB reads (paper: 72% at 128 sectors, 18% at 256)",
        &c.combined_read_hist(),
        8,
    );
    let d = dist_run(scale, 65 * KB, 0);
    print_hist(
        "Fig 2(d) — dispatch sizes, 65 KB reads (paper: mass shifts to small sizes)",
        &d.combined_read_hist(),
        8,
    );
    let e = dist_run(scale, 64 * KB, 10 * KB);
    print_hist(
        "Fig 2(e) — dispatch sizes, 64 KB + 10 KB offset (paper: modes at 80 and 176 sectors)",
        &e.combined_read_hist(),
        8,
    );
    let frac_small = |h: &Histogram| h.fraction_below(128);
    println!(
        "share of dispatches below 128 sectors: aligned {:.0}%, 65KB {:.0}%, +10KB {:.0}%\n",
        frac_small(&c.combined_read_hist()) * 100.0,
        frac_small(&d.combined_read_hist()) * 100.0,
        frac_small(&e.combined_read_hist()) * 100.0,
    );
}

//! Ablations beyond the paper: what each design ingredient buys.

use crate::{build_ibridge_with, mbps, Scale, Table, FILE_A};
use ibridge_core::IBridgeConfig;
use ibridge_device::IoDir;
use ibridge_iosched::CfqConfig;
use ibridge_pvfs::{Cluster, ClusterConfig, DiskSched, ServerConfig, StockPolicy};
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

fn stock_with(scale: &Scale, server: ServerConfig) -> Cluster {
    let cfg = ClusterConfig {
        seed: scale.seed,
        shards: scale.shards,
        server,
        ..Default::default()
    };
    Cluster::new(cfg, |_| Box::new(StockPolicy::new()))
}

fn stream_throughput(scale: &Scale, cluster: &mut Cluster, dir: IoDir, size: u64) -> f64 {
    let mut w = MpiIoTest::sized(dir, FILE_A, 64, size, scale.stream_bytes / 2);
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.run(&mut w).throughput_mbps()
}

fn schedulers(scale: &Scale) -> String {
    let mut t = Table::new(
        "Ablation — disk scheduler (stock, 64 procs)",
        &["scheduler", "aligned-64KB read", "65KB read", "65KB write"],
    );
    for (label, sched) in [
        ("CFQ (paper)", DiskSched::Cfq),
        ("Deadline", DiskSched::Deadline),
        ("Noop", DiskSched::Noop),
    ] {
        let server = ServerConfig {
            disk_sched: sched,
            ..Default::default()
        };
        let aligned = stream_throughput(
            scale,
            &mut stock_with(scale, server.clone()),
            IoDir::Read,
            64 * KB,
        );
        let unaligned_r = stream_throughput(
            scale,
            &mut stock_with(scale, server.clone()),
            IoDir::Read,
            65 * KB,
        );
        let unaligned_w =
            stream_throughput(scale, &mut stock_with(scale, server), IoDir::Write, 65 * KB);
        t.row(&[
            label.to_string(),
            mbps(aligned),
            mbps(unaligned_r),
            mbps(unaligned_w),
        ]);
    }
    format!(
        "{}unaligned access hurts under every scheduler — the fragmentation \
         is in the workload, not the elevator.\n\n",
        t.block()
    )
}

fn ncq(scale: &Scale) -> String {
    let mut t = Table::new(
        "Ablation — disk NCQ depth (stock, 65 KB reads, 64 procs)",
        &["depth", "throughput(MB/s)"],
    );
    for depth in [1usize, 4, 16] {
        let server = ServerConfig {
            ncq_depth: depth,
            ..Default::default()
        };
        let thpt = stream_throughput(scale, &mut stock_with(scale, server), IoDir::Read, 65 * KB);
        t.row(&[depth.to_string(), mbps(thpt)]);
    }
    format!(
        "{}device-side reordering recovers part of the unaligned penalty by \
         servicing co-queued pieces nearest-first.\n\n",
        t.block()
    )
}

/// Eq. (3) sibling boost on/off; CFQ anticipation on/off; scheduler and
/// NCQ-depth comparisons. Each ablation is an independent job; the
/// rendered blocks are concatenated in the fixed order below.
pub fn run(scale: &Scale) -> String {
    let parts: Vec<fn(&Scale) -> String> = vec![
        eq3,
        eq3_degraded,
        anticipation,
        schedulers,
        ncq,
        collective,
        sieving,
        read_only_cache,
        network,
    ];
    crate::par_map(parts, |f| f(scale)).concat()
}

/// Interconnect sensitivity: the paper's QDR InfiniBand vs slower
/// fabrics. Synchronous clients demand little per-link bandwidth, so the
/// experiments stay device-bound on every realistic network.
fn network(scale: &Scale) -> String {
    use ibridge_net::LinkConfig;
    let mut t = Table::new(
        "Ablation — interconnect (65 KB writes, 64 procs)",
        &["network", "stock", "iBridge", "improvement"],
    );
    let slow_lan = LinkConfig {
        bandwidth: 1.2e6, // 10 Mb/s-class
        latency: ibridge_des::SimDuration::from_micros(200),
        overhead: ibridge_des::SimDuration::from_micros(50),
    };
    for (label, link) in [
        ("QDR InfiniBand", LinkConfig::qdr_infiniband()),
        ("GigE", LinkConfig::gige()),
        ("slow LAN (10 Mb/s)", slow_lan),
    ] {
        let mut pair = Vec::new();
        for ibridge_on in [false, true] {
            let cfg = ClusterConfig {
                seed: scale.seed,
                shards: scale.shards,
                link: link.clone(),
                ..Default::default()
            };
            let mut cluster = if ibridge_on {
                ibridge_core::ibridge_cluster(cfg, scale.ssd_capacity)
            } else {
                ibridge_core::stock_cluster(cfg)
            };
            let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 64, 65 * KB, scale.stream_bytes / 2);
            cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
            pair.push(cluster.run(&mut w).throughput_mbps());
        }
        t.row(&[
            label.to_string(),
            mbps(pair[0]),
            mbps(pair[1]),
            format!("{:+.0}%", (pair[1] - pair[0]) / pair[0] * 100.0),
        ]);
    }
    format!(
        "{}at 64 synchronous processes even a 10 Mb/s per-client link stays \
         under the per-process demand (~0.4 MB/s), so the workload remains \
         device-bound and iBridge's gain is network-insensitive — which is \
         why the paper never needed to characterise its fabric.\n\n",
        t.block()
    )
}

/// Data sieving (ROMIO's client-side fix for strided pieces) vs iBridge.
fn sieving(scale: &Scale) -> String {
    use ibridge_workloads::StridedAccess;
    let mut t = Table::new(
        "Ablation — data sieving vs iBridge (strided 2 KB pieces, 32 procs)",
        &["approach", "useful MB/s", "bytes moved/useful"],
    );
    let base = StridedAccess {
        dir: IoDir::Read,
        file: FILE_A,
        procs: 32,
        pieces: 8,
        piece: 2 * KB,
        stride: 16 * KB,
        iters: (scale.stream_bytes / 64 / (32 * 8 * 16 * KB)).max(4),
        sieve: false,
    };
    let configs = [
        ("stock, per-piece", crate::System::Stock, false),
        ("stock + data sieving", crate::System::Stock, true),
        ("iBridge, per-piece (warm)", crate::System::IBridge, false),
    ];
    for (label, system, sieve) in configs {
        let mut w = StridedAccess {
            sieve,
            ..base.clone()
        };
        let useful = w.useful_bytes_per_iter() * w.iters * w.procs as u64;
        let mut cluster = crate::build(system, 8, scale);
        cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
        if system == crate::System::IBridge {
            // Reads profit from pre-loaded pieces: warm first.
            cluster.run(&mut StridedAccess {
                sieve,
                ..base.clone()
            });
        }
        let stats = cluster.run(&mut w);
        t.row(&[
            label.to_string(),
            mbps(useful as f64 / stats.elapsed.as_secs_f64() / 1e6),
            format!("{:.1}x", stats.bytes as f64 / useful as f64),
        ]);
    }
    format!(
        "{}sieving trades wasted transfer (8x here) for far fewer ops; \
         iBridge attacks the same pieces server-side without moving extra \
         bytes.\n\n",
        t.block()
    )
}

/// Eq. (3) under server skew: one degraded disk (4× slower seeks, half
/// the media rate) — the bottleneck scenario the boost was designed for.
fn eq3_degraded(scale: &Scale) -> String {
    use ibridge_core::IBridgePolicy;
    use ibridge_device::DiskProfile;
    let degraded = || {
        let base = DiskProfile::hp_mm0500();
        DiskProfile {
            min_seek: base.min_seek * 4,
            max_seek: base.max_seek * 4,
            sectors_per_track: base.sectors_per_track / 2,
            ..base
        }
    };
    let mut t = Table::new(
        "Ablation — Eq. (3) with one degraded server (65 KB writes, 64 procs)",
        &["variant", "throughput(MB/s)", "p99-ish latency(ms)"],
    );
    for (label, eq3_on) in [("with Eq.3", true), ("without Eq.3", false)] {
        let cfg = ClusterConfig {
            seed: scale.seed,
            shards: scale.shards,
            flag_fragments: true,
            server: ServerConfig {
                with_cache_dev: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let base_server = cfg.server.clone();
        let mut cluster = ibridge_pvfs::Cluster::heterogeneous(
            cfg,
            move |id| {
                let mut s = base_server.clone();
                if id == 0 {
                    s.disk = degraded();
                }
                s
            },
            move |id| {
                let mut c = IBridgeConfig::paper_defaults(id);
                c.eq3 = eq3_on;
                if id == 0 {
                    c.disk = degraded();
                }
                Box::new(IBridgePolicy::new(c))
            },
        );
        let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 64, 65 * KB, scale.stream_bytes / 2);
        cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
        let stats = cluster.run(&mut w);
        t.row(&[
            label.to_string(),
            mbps(stats.throughput_mbps()),
            format!("{:.1}", stats.latency_ms.max().unwrap_or(0.0)),
        ]);
    }
    format!(
        "{}a degraded server makes the broadcast T values diverge, which is \
         when Eq. (3) can matter — under the per-byte return model even \
         unboosted fragments already clear the admission bar, so the boost \
         stays belt-and-braces here too (an honest negative result; under \
         the paper's per-request reading it is what tips fragments in).\n\n",
        t.block()
    )
}

/// Read-only cache (no write redirection) vs the full scheme.
fn read_only_cache(scale: &Scale) -> String {
    let mut t = Table::new(
        "Ablation — write redirection (65 KB writes, 64 procs)",
        &["variant", "throughput(MB/s)", "ssd-bytes"],
    );
    for (label, redirect) in [("full scheme", true), ("read-only cache", false)] {
        let mut cluster = crate::build_ibridge_with(8, scale, 20 * KB, move |id| {
            let mut c = IBridgeConfig::paper_defaults(id);
            c.redirect_writes = redirect;
            c
        });
        let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 64, 65 * KB, scale.stream_bytes / 2);
        cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
        let stats = cluster.run(&mut w);
        t.row(&[
            label.to_string(),
            mbps(stats.throughput_mbps()),
            crate::pct(stats.ssd_served_fraction() * 100.0),
        ]);
    }
    format!(
        "{}without write redirection a write-only workload cannot use the \
         SSD at all — the redirect path is what the paper's write gains \
         come from.\n\n",
        t.block()
    )
}

/// Collective buffering (the client-side alternative from §IV) vs
/// iBridge (the server-side fix) on the same unaligned pattern.
fn collective(scale: &Scale) -> String {
    use ibridge_workloads::CollectiveBuffering;
    let mut t = Table::new(
        "Ablation — collective buffering vs iBridge (65 KB writes, 64 procs)",
        &["approach", "throughput(MB/s)"],
    );
    // Baseline and iBridge, independent requests.
    let mut stock = crate::build(crate::System::Stock, 8, scale);
    let s = stream_throughput(scale, &mut stock, IoDir::Write, 65 * KB);
    t.row(&["stock (independent)".into(), mbps(s)]);

    let mut ib = crate::build(crate::System::IBridge, 8, scale);
    let i = stream_throughput(scale, &mut ib, IoDir::Write, 65 * KB);
    t.row(&["iBridge (independent)".into(), mbps(i)]);

    // Two-phase collective I/O on the stock system.
    let mut cluster = crate::build(crate::System::Stock, 8, scale);
    let mut w =
        CollectiveBuffering::new(IoDir::Write, FILE_A, 64, 8, 65 * KB, scale.stream_bytes / 2);
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    let stats = cluster.run(&mut w);
    t.row(&[
        "stock + collective buffering".into(),
        mbps(stats.throughput_mbps()),
    ]);
    format!(
        "{}collective buffering removes the unalignment at the client (at \
         the cost of a data exchange and strict synchronisation); iBridge \
         removes it at the server and needs no application change.\n\n",
        t.block()
    )
}

fn eq3(scale: &Scale) -> String {
    let mut t = Table::new(
        "Ablation — Eq. (3) striping-magnification boost (65 KB writes, 64 procs)",
        &["variant", "throughput(MB/s)", "redirected-writes"],
    );
    for (label, eq3) in [("with Eq.3", true), ("without Eq.3", false)] {
        let mut cluster = build_ibridge_with(8, scale, 20 * KB, move |id| {
            let mut c = IBridgeConfig::paper_defaults(id);
            c.eq3 = eq3;
            c
        });
        let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 64, 65 * KB, scale.stream_bytes);
        cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
        let stats = cluster.run(&mut w);
        let redirected: u64 = stats
            .servers
            .iter()
            .map(|s| s.policy.redirected_writes)
            .sum();
        t.row(&[
            label.to_string(),
            mbps(stats.throughput_mbps()),
            redirected.to_string(),
        ]);
    }
    format!(
        "{}Eq. (3) widens admission for fragments whose server is the \
         bottleneck of their sibling set; with uniform load its effect is \
         small, under skew it grows.\n\n",
        t.block()
    )
}

fn anticipation(scale: &Scale) -> String {
    let mut t = Table::new(
        "Ablation — CFQ anticipation (stock, aligned 64 KB reads, 64 procs)",
        &["variant", "throughput(MB/s)"],
    );
    for (label, idle_ms) in [("anticipation 8ms", 8u64), ("no anticipation", 0)] {
        let cfg = ClusterConfig {
            seed: scale.seed,
            shards: scale.shards,
            server: ServerConfig {
                cfq: CfqConfig {
                    slice_idle: ibridge_des::SimDuration::from_millis(idle_ms),
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg, |_| Box::new(StockPolicy::new()));
        let mut w = MpiIoTest::sized(IoDir::Read, FILE_A, 64, 64 * KB, scale.stream_bytes);
        cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
        let stats = cluster.run(&mut w);
        t.row(&[label.to_string(), mbps(stats.throughput_mbps())]);
    }
    format!(
        "{}anticipation preserves per-process spatial locality on the disks; \
         disabling it shows how much of the stock system's aligned \
         performance depends on it.\n\n",
        t.block()
    )
}

//! Multi-seed summary of the headline comparisons: every number is the
//! mean ± sample standard deviation over several seeds, so the
//! improvement factors reported elsewhere can be trusted not to be
//! single-seed flukes.

use crate::{run_once, run_warm, Scale, System, Table, FILE_A};
use ibridge_device::IoDir;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;
const SEEDS: [u64; 5] = [42, 7, 19, 101, 2026];

fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    (mean, var.sqrt())
}

fn fmt(xs: &[f64]) -> String {
    let (m, sd) = mean_sd(xs);
    format!("{m:.1} ± {sd:.1}")
}

fn throughputs(scale: &Scale, system: System, dir: IoDir, size: u64) -> Vec<f64> {
    SEEDS
        .iter()
        .map(|&seed| {
            let s = Scale { seed, ..*scale };
            let make = || MpiIoTest::sized(dir, FILE_A, 64, size, s.stream_bytes / 2);
            let span = make().span_bytes();
            let stats = if dir.is_read() && system == System::IBridge {
                run_warm(system, 8, &s, span, &mut || Box::new(make()))
            } else {
                run_once(system, 8, &s, span, &mut make())
            };
            stats.throughput_mbps()
        })
        .collect()
}

/// Runs the headline rows across 5 seeds.
pub fn run(scale: &Scale) {
    let mut t = Table::new(
        format!(
            "Summary — mean ± sd over {} seeds (mpi-io-test, 64 procs, MB/s)",
            SEEDS.len()
        ),
        &["config", "stock", "iBridge", "improvement"],
    );
    let rows = [
        ("aligned 64KB write", IoDir::Write, 64 * KB),
        ("65KB write", IoDir::Write, 65 * KB),
        ("65KB read (warm)", IoDir::Read, 65 * KB),
        ("64KB+10KB write", IoDir::Write, 64 * KB), // shift handled below
    ];
    for (label, dir, size) in rows {
        let (stock, ib) = if label.starts_with("64KB+10KB") {
            let with_shift = |system| -> Vec<f64> {
                SEEDS
                    .iter()
                    .map(|&seed| {
                        let s = Scale { seed, ..*scale };
                        let mut w = MpiIoTest::sized(dir, FILE_A, 64, size, s.stream_bytes / 2)
                            .with_shift(10 * KB);
                        let span = w.span_bytes();
                        run_once(system, 8, &s, span, &mut w).throughput_mbps()
                    })
                    .collect()
            };
            (with_shift(System::Stock), with_shift(System::IBridge))
        } else {
            (
                throughputs(scale, System::Stock, dir, size),
                throughputs(scale, System::IBridge, dir, size),
            )
        };
        let (ms, _) = mean_sd(&stock);
        let (mi, _) = mean_sd(&ib);
        t.row(&[
            label.to_string(),
            fmt(&stock),
            fmt(&ib),
            format!("{:+.0}%", (mi - ms) / ms * 100.0),
        ]);
    }
    t.print();
    println!(
        "seed variation comes from client jitter and workload randomness; \
         standard deviations well below the improvement margins mean the \
         comparisons are stable.\n"
    );
}

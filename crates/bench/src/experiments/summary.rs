//! Multi-seed summary of the headline comparisons: every number is the
//! mean ± sample standard deviation over several seeds, so the
//! improvement factors reported elsewhere can be trusted not to be
//! single-seed flukes.

use crate::runpar::par_map;
use crate::{run_once, run_warm, Scale, System, Table, FILE_A};
use ibridge_device::IoDir;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;
const SEEDS: [u64; 5] = [42, 7, 19, 101, 2026];

fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    (mean, var.sqrt())
}

fn fmt(xs: &[f64]) -> String {
    let (m, sd) = mean_sd(xs);
    format!("{m:.1} ± {sd:.1}")
}

/// One headline configuration of the summary table.
#[derive(Debug, Clone, Copy)]
struct Row {
    label: &'static str,
    dir: IoDir,
    size: u64,
    shift: u64,
}

const ROWS: [Row; 4] = [
    Row {
        label: "aligned 64KB write",
        dir: IoDir::Write,
        size: 64 * KB,
        shift: 0,
    },
    Row {
        label: "65KB write",
        dir: IoDir::Write,
        size: 65 * KB,
        shift: 0,
    },
    Row {
        label: "65KB read (warm)",
        dir: IoDir::Read,
        size: 65 * KB,
        shift: 0,
    },
    Row {
        label: "64KB+10KB write",
        dir: IoDir::Write,
        size: 64 * KB,
        shift: 10 * KB,
    },
];

fn throughput(scale: &Scale, row: Row, system: System, seed: u64) -> f64 {
    let s = Scale { seed, ..*scale };
    let make = || {
        MpiIoTest::sized(row.dir, FILE_A, 64, row.size, s.stream_bytes / 2).with_shift(row.shift)
    };
    let span = make().span_bytes();
    let stats = if row.dir.is_read() && system == System::IBridge {
        run_warm(system, 8, &s, span, &mut || Box::new(make()))
    } else {
        run_once(system, 8, &s, span, &mut make())
    };
    stats.throughput_mbps()
}

/// Runs the headline rows across 5 seeds — one job per
/// (row, system, seed) cluster simulation.
pub fn run(scale: &Scale) -> String {
    let mut t = Table::new(
        format!(
            "Summary — mean ± sd over {} seeds (mpi-io-test, 64 procs, MB/s)",
            SEEDS.len()
        ),
        &["config", "stock", "iBridge", "improvement"],
    );
    let jobs: Vec<(Row, System, u64)> = ROWS
        .into_iter()
        .flat_map(|row| {
            [System::Stock, System::IBridge]
                .into_iter()
                .flat_map(move |system| SEEDS.iter().map(move |&seed| (row, system, seed)))
        })
        .collect();
    let thpts = par_map(jobs, |(row, system, seed)| {
        throughput(scale, row, system, seed)
    });
    let n = SEEDS.len();
    for (idx, row) in ROWS.into_iter().enumerate() {
        let base = idx * 2 * n;
        let stock = &thpts[base..base + n];
        let ib = &thpts[base + n..base + 2 * n];
        let (ms, _) = mean_sd(stock);
        let (mi, _) = mean_sd(ib);
        t.row(&[
            row.label.to_string(),
            fmt(stock),
            fmt(ib),
            format!("{:+.0}%", (mi - ms) / ms * 100.0),
        ]);
    }
    format!(
        "{}seed variation comes from client jitter and workload randomness; \
         standard deviations well below the improvement margins mean the \
         comparisons are stable.\n\n",
        t.block()
    )
}

//! Figs. 6 and 7: scalability with process count and server count.

use crate::{mbps, run_once, run_warm, Scale, System, Table, FILE_A};
use ibridge_device::IoDir;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

fn throughput(
    scale: &Scale,
    system: System,
    dir: IoDir,
    n_servers: usize,
    procs: usize,
    size: u64,
) -> f64 {
    let make = || MpiIoTest::sized(dir, FILE_A, procs, size, scale.stream_bytes);
    let span = make().span_bytes();
    let stats = if dir.is_read() && system == System::IBridge {
        run_warm(system, n_servers, scale, span, &mut || Box::new(make()))
    } else {
        run_once(system, n_servers, scale, span, &mut make())
    };
    stats.throughput_mbps()
}

/// Fig. 6: 65 KB requests as the process count grows.
pub fn fig6(scale: &Scale) {
    for (dir, label) in [
        (IoDir::Write, "Fig 6 — WRITE throughput (MB/s), 65 KB requests"),
        (IoDir::Read, "Fig 6 — READ throughput (MB/s), 65 KB requests (iBridge warm)"),
    ] {
        let mut t = Table::new(label, &["procs", "stock", "iBridge", "improvement"]);
        for procs in [16usize, 64, 128, 512] {
            let s = throughput(scale, System::Stock, dir, 8, procs, 65 * KB);
            let i = throughput(scale, System::IBridge, dir, 8, procs, 65 * KB);
            t.row(&[
                procs.to_string(),
                mbps(s),
                mbps(i),
                format!("{:+.0}%", (i - s) / s * 100.0),
            ]);
        }
        t.print();
    }
    println!(
        "paper: iBridge improves 65 KB access by 154% on average across \
         process counts; 512 procs is moderately slower for both systems.\n"
    );
}

/// Fig. 7(a,b): 64 procs as the data-server count grows; aligned 64 KB
/// stock is the reference.
pub fn fig7(scale: &Scale) {
    for (dir, label) in [
        (IoDir::Write, "Fig 7(a) — WRITE throughput (MB/s) vs server count, 64 procs"),
        (IoDir::Read, "Fig 7(b) — READ throughput (MB/s) vs server count, 64 procs"),
    ] {
        let mut t = Table::new(
            label,
            &[
                "servers",
                "stock-64KB(aligned)",
                "stock-65KB",
                "iBridge-65KB",
                "gap-closed",
            ],
        );
        for n in [1usize, 2, 4, 8] {
            let aligned = throughput(scale, System::Stock, dir, n, 64, 64 * KB);
            let s = throughput(scale, System::Stock, dir, n, 64, 65 * KB);
            let i = throughput(scale, System::IBridge, dir, n, 64, 65 * KB);
            let gap = if aligned > s {
                (i - s) / (aligned - s) * 100.0
            } else {
                100.0
            };
            t.row(&[
                n.to_string(),
                mbps(aligned),
                mbps(s),
                mbps(i),
                format!("{gap:.0}%"),
            ]);
        }
        t.print();
    }
    println!(
        "paper: throughput grows with server count for all systems; the \
         aligned/unaligned gap widens with more servers and iBridge nearly \
         closes it, especially for writes.\n"
    );
}

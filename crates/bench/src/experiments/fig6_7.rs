//! Figs. 6 and 7: scalability with process count and server count.

use crate::runpar::par_map;
use crate::{mbps, run_once, run_warm, Scale, System, Table, FILE_A};
use ibridge_device::IoDir;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

fn throughput(
    scale: &Scale,
    system: System,
    dir: IoDir,
    n_servers: usize,
    procs: usize,
    size: u64,
) -> f64 {
    let make = || MpiIoTest::sized(dir, FILE_A, procs, size, scale.stream_bytes);
    let span = make().span_bytes();
    let stats = if dir.is_read() && system == System::IBridge {
        run_warm(system, n_servers, scale, span, &mut || Box::new(make()))
    } else {
        run_once(system, n_servers, scale, span, &mut make())
    };
    stats.throughput_mbps()
}

/// Fig. 6: 65 KB requests as the process count grows.
pub fn fig6(scale: &Scale) -> String {
    let procs_list = [16usize, 64, 128, 512];
    let mut out = String::new();
    for (dir, label) in [
        (
            IoDir::Write,
            "Fig 6 — WRITE throughput (MB/s), 65 KB requests",
        ),
        (
            IoDir::Read,
            "Fig 6 — READ throughput (MB/s), 65 KB requests (iBridge warm)",
        ),
    ] {
        let mut t = Table::new(label, &["procs", "stock", "iBridge", "improvement"]);
        let jobs: Vec<(System, usize)> = procs_list
            .iter()
            .flat_map(|&p| [(System::Stock, p), (System::IBridge, p)])
            .collect();
        let thpts = par_map(jobs, |(system, procs)| {
            throughput(scale, system, dir, 8, procs, 65 * KB)
        });
        for (idx, procs) in procs_list.iter().enumerate() {
            let (s, i) = (thpts[2 * idx], thpts[2 * idx + 1]);
            t.row(&[
                procs.to_string(),
                mbps(s),
                mbps(i),
                format!("{:+.0}%", (i - s) / s * 100.0),
            ]);
        }
        out += &t.block();
    }
    out += "paper: iBridge improves 65 KB access by 154% on average across \
         process counts; 512 procs is moderately slower for both systems.\n\n";
    out
}

/// Fig. 7(a,b): 64 procs as the data-server count grows; aligned 64 KB
/// stock is the reference.
pub fn fig7(scale: &Scale) -> String {
    let servers = [1usize, 2, 4, 8];
    let mut out = String::new();
    for (dir, label) in [
        (
            IoDir::Write,
            "Fig 7(a) — WRITE throughput (MB/s) vs server count, 64 procs",
        ),
        (
            IoDir::Read,
            "Fig 7(b) — READ throughput (MB/s) vs server count, 64 procs",
        ),
    ] {
        let mut t = Table::new(
            label,
            &[
                "servers",
                "stock-64KB(aligned)",
                "stock-65KB",
                "iBridge-65KB",
                "gap-closed",
            ],
        );
        let jobs: Vec<(System, usize, u64)> = servers
            .iter()
            .flat_map(|&n| {
                [
                    (System::Stock, n, 64 * KB),
                    (System::Stock, n, 65 * KB),
                    (System::IBridge, n, 65 * KB),
                ]
            })
            .collect();
        let thpts = par_map(jobs, |(system, n, size)| {
            throughput(scale, system, dir, n, 64, size)
        });
        for (idx, n) in servers.iter().enumerate() {
            let (aligned, s, i) = (thpts[3 * idx], thpts[3 * idx + 1], thpts[3 * idx + 2]);
            let gap = if aligned > s {
                (i - s) / (aligned - s) * 100.0
            } else {
                100.0
            };
            t.row(&[
                n.to_string(),
                mbps(aligned),
                mbps(s),
                mbps(i),
                format!("{gap:.0}%"),
            ]);
        }
        out += &t.block();
    }
    out += "paper: throughput grows with server count for all systems; the \
         aligned/unaligned gap widens with more servers and iBridge nearly \
         closes it, especially for writes.\n\n";
    out
}

//! Segmented backup-log maintenance (beyond the paper).
//!
//! PR 4 made the on-SSD mapping-table backup durable; this experiment
//! exercises the maintenance machinery layered on top of it:
//!
//! 1. **In-cluster maintenance** — the checkpoint workload runs on an
//!    iBridge cluster configured with small segments and a short
//!    checkpoint cadence, so sealing, compaction, reclaim, indexed
//!    checkpoints and scrubbing all happen inside the run. Maintenance
//!    is scheduled by the writeback daemon and only acts when the cache
//!    device probe reports an idle window — the `ticks (busy)` column
//!    shows how often it stood aside. A `crash` row restarts a server
//!    mid-run and recovers from the maintained log.
//! 2. **O(dirty) recovery** — an offline policy instance appends a
//!    growing total of backup records over a *fixed* live set
//!    (overwrites supersede in place). With maintenance on, restart
//!    recovery replays the checkpoint image plus the short tail and
//!    skips everything the checkpoint covers: the replayed-record count
//!    stays flat as the append total grows 16x. With maintenance off
//!    (checkpoint cadence 0, no ticks), the scan grows with the log —
//!    the pre-segmentation O(log) behaviour.
//!
//! Everything is virtual-time or pure policy arithmetic, so the output
//! is byte-identical at any `--jobs`/`--shards`/`--threads` level.

use crate::runpar::par_map;
use crate::{Scale, Table, FILE_A};
use ibridge_core::{IBridgeConfig, IBridgePolicy};
use ibridge_des::{SimDuration, SimTime};
use ibridge_device::IoDir;
use ibridge_faults::{builtin, FaultPlan};
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{
    CachePolicy, Cluster, ClusterConfig, MaintStats, Placement, ReqClass, RunStats, ServerConfig,
    SubRequest,
};
use ibridge_workloads::CheckpointWorkload;

/// Plans for the in-cluster table: faultless maintenance, a crash that
/// recovers from the maintained log, and bit-rot the scrubber races.
const PLANS: &[&str] = &["none", "crash", "bit-rot"];

/// Fixed live set for the offline O(dirty) probe.
const LIVE_ENTRIES: u64 = 48;
/// Growing append totals — 16x between first and last.
const OPS: &[u64] = &[500, 2000, 8000];

/// Same probe shape as the `recovery` experiment, but with maintenance
/// deliberately hot: 2 KB segments (~25 records) seal several times per
/// 96-append checkpoint period, so one checkpoint-workload run
/// exercises seal, compact, reclaim, checkpoint and scrub.
fn probe(scale: &Scale, plan: &FaultPlan) -> (RunStats, MaintStats) {
    let cfg = ClusterConfig {
        n_servers: 4,
        seed: scale.seed,
        shards: scale.shards,
        threads: scale.threads,
        audit_interval: scale.audit_interval,
        report_interval: SimDuration::from_millis(20),
        flag_fragments: true,
        server: ServerConfig {
            ra_budget: scale.page_cache,
            with_cache_dev: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let ssd_capacity = scale.ssd_capacity;
    let disk = cfg.server.disk.clone();
    let mut cluster = Cluster::new(cfg, move |server_id| {
        let mut c = IBridgeConfig::with_capacity(server_id, ssd_capacity);
        c.disk = disk.clone();
        c.segment_bytes = 2 << 10;
        c.checkpoint_every = 96;
        Box::new(IBridgePolicy::new(c))
    });
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        4,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(plan);
    let stats = cluster.run(&mut w);
    let mut maint = MaintStats::default();
    for s in &stats.servers {
        maint.absorb(&s.maint);
    }
    (stats, maint)
}

/// One write sub-request against the offline policy (the same fragment
/// shape the policy unit tests use; LBN far from the head so the Eq. 1
/// return is positive and the write redirects into the SSD log).
fn write_frag(p: &mut IBridgePolicy, offset: u64) {
    let sub = SubRequest {
        dir: IoDir::Write,
        file: FileHandle(1),
        server: 0,
        offset,
        len: 1024,
        class: ReqClass::Fragment { siblings: vec![1] },
    };
    let pl = p.place(SimTime::ZERO, &sub, 900_000_000);
    assert!(
        matches!(pl, Placement::Ssd { .. }),
        "offline probe writes must redirect into the SSD log"
    );
}

/// Offline O(dirty) probe: `ops` overwrites cycling a fixed set of
/// `LIVE_ENTRIES` ranges, with or without maintenance, then a restart
/// recovery. The maintained run crashes right after its final
/// checkpoint lands — before the reclaim barrier — so every condemned
/// record is covered and skipped unverified. Returns (media records,
/// checkpoint records replayed, tail records verified, tail records
/// skipped).
fn offline_probe(ops: u64, maintain: bool) -> (u64, u64, u64, u64) {
    let mut cfg = IBridgeConfig::with_capacity(0, 64 << 20);
    cfg.segment_bytes = 4 << 10;
    cfg.checkpoint_every = if maintain { 128 } else { 0 };
    let mut p = IBridgePolicy::new(cfg.clone());
    for i in 0..ops {
        write_frag(&mut p, (i % LIVE_ENTRIES) * 4096);
        if maintain && i % 8 == 7 {
            p.log_maintenance(SimTime::ZERO, true);
        }
    }
    if maintain {
        p.write_checkpoint();
    }
    let state = p.snapshot();
    let media = state.records().len() as u64;
    let (fresh, fsck) = IBridgePolicy::recover_with_report(cfg, &state, false);
    assert_eq!(
        fsck.dirty_entries_kept, LIVE_ENTRIES,
        "every live overwrite survives recovery"
    );
    fresh.audit().expect("recovered state is consistent");
    (
        media,
        fsck.checkpoint_records,
        fsck.records_scanned,
        fsck.records_skipped,
    )
}

/// The `logmaint` experiment: in-cluster maintenance matrix plus the
/// offline O(dirty) recovery table.
pub fn run(scale: &Scale) -> String {
    // -- In-cluster maintenance under fault plans --------------------
    let plans: Vec<(String, FaultPlan)> = PLANS
        .iter()
        .map(|&name| {
            let text = builtin(name).expect("builtin listed");
            let plan = FaultPlan::parse(text).expect("builtin parses");
            (name.to_string(), plan)
        })
        .collect();
    let results = par_map(plans.clone(), |(_, plan)| probe(scale, &plan));

    let mut t = Table::new(
        "Log maintenance — checkpoint workload, 2 KB segments, checkpoint every 96 appends (iBridge, 4 servers)",
        &[
            "plan",
            "MB/s",
            "ticks (busy)",
            "seal/comp/reclaim",
            "ckpts",
            "rewritten",
            "scrubbed",
            "fsck-scanned",
        ],
    );
    for ((name, _), (stats, m)) in plans.iter().zip(&results) {
        t.row(&[
            name.clone(),
            format!("{:.1}", stats.throughput_mbps()),
            format!("{} ({})", m.ticks, m.busy_skips),
            format!(
                "{}/{}/{}",
                m.segments_sealed, m.segments_compacted, m.segments_reclaimed
            ),
            m.checkpoints.to_string(),
            m.records_rewritten.to_string(),
            m.scrub_records.to_string(),
            stats.faults.fsck_records_scanned.to_string(),
        ]);
    }

    // -- Offline O(dirty) recovery -----------------------------------
    let mut o = Table::new(
        "Indexed recovery — growing append total over a fixed 48-entry live set",
        &[
            "mode",
            "ops",
            "media-records",
            "ckpt-replayed",
            "tail-verified",
            "tail-skipped",
        ],
    );
    let mut maintained_scans = Vec::new();
    for &maintain in &[true, false] {
        for &ops in OPS {
            let (media, ckpt, scanned, skipped) = offline_probe(ops, maintain);
            if maintain {
                maintained_scans.push(ckpt + scanned);
            }
            o.row(&[
                if maintain { "maintained" } else { "no-maint" }.to_string(),
                ops.to_string(),
                media.to_string(),
                ckpt.to_string(),
                scanned.to_string(),
                skipped.to_string(),
            ]);
        }
    }
    // The O(dirty) claim, enforced: replayed work (checkpoint image +
    // verified tail) must not scale with the 16x append growth.
    let (lo, hi) = (
        *maintained_scans.iter().min().expect("rows"),
        *maintained_scans.iter().max().expect("rows"),
    );
    assert!(
        hi <= lo.saturating_mul(3),
        "indexed recovery must be O(dirty): replay grew {lo} -> {hi} over a fixed live set"
    );

    format!(
        "{}{}Maintenance rides the writeback daemon's tick and runs only \
         when the cache device probe reports an idle window ('ticks \
         (busy)' counts the stand-asides). Sealed segments whose live \
         share drops below half are compacted into fresh appends; \
         condemned media is reclaimed one barrier later; an indexed \
         checkpoint serializes the mapping table every 96 appends so a \
         restart replays the image plus the short tail and skips every \
         covered record unverified. The offline table pins the O(dirty) \
         claim: at a fixed live set, 'ckpt-replayed' + 'tail-verified' \
         stays flat while 'no-maint' scans the whole ever-growing log. \
         The background scrubber CRC-walks cold segments during the same \
         idle windows and repairs latent bit-rot before a restart can \
         meet it.\n\n",
        t.block(),
        o.block()
    )
}

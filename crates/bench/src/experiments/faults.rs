//! Fault injection & recovery (beyond the paper).
//!
//! The paper's Sec. III-D writeback daemon and mapping-table backup
//! exist exactly so the SSD log survives failures; this experiment
//! measures what each fault class costs. Every builtin plan from
//! `ibridge-faults` runs the checkpoint workload on an iBridge cluster
//! and reports the throughput/latency deltas against the faultless
//! baseline plus the recovery counters (retries, timeouts, message
//! drops) and the durability cost (dirty bytes lost when an SSD dies,
//! seconds of degraded service).
//!
//! Fault schedules and all impairment draws derive from the experiment
//! seed, so the table is byte-identical at any `--jobs` level.

use crate::runpar::par_map;
use crate::{build, Scale, System, Table, FILE_A};
use ibridge_des::SimDuration;
use ibridge_faults::{builtin, FaultPlan};
use ibridge_pvfs::RunStats;
use ibridge_workloads::CheckpointWorkload;

/// The plans this table covers. A fixed list, not `BUILTIN_NAMES`: the
/// corruption plans (torn-write, bit-rot, mds-crash) report through the
/// `recovery` experiment instead, and the fault-matrix golden pins these
/// six rows byte-for-byte.
const SMOKE_PLANS: &[&str] = &["none", "crash", "ssd-loss", "fail-slow", "net", "chaos"];

/// Fixed probe shape: small enough that the fault windows of the
/// builtin plans (tens to hundreds of milliseconds) overlap the run at
/// any scale. Only the seed follows `--seed`.
fn probe(scale: &Scale, plan: &FaultPlan) -> RunStats {
    let mut cluster = build(System::IBridge, 4, scale);
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        4,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(plan);
    cluster.run(&mut w)
}

/// The `faults` experiment: one row per builtin plan (plus the
/// `--fault-plan` one when given).
pub fn run(scale: &Scale) -> String {
    let mut plans: Vec<(String, FaultPlan)> = SMOKE_PLANS
        .iter()
        .map(|&name| {
            let text = builtin(name).expect("builtin listed");
            let plan = FaultPlan::parse(text).expect("builtin parses");
            (name.to_string(), plan)
        })
        .collect();
    if let Some(plan) = scale.fault_plan {
        plans.push(("custom".to_string(), plan.clone()));
    }
    let results = par_map(plans.clone(), |(_, plan)| probe(scale, &plan));

    let mut t = Table::new(
        "Faults — checkpoint workload under injected faults (iBridge, 4 servers)",
        &[
            "plan",
            "MB/s",
            "vs-none",
            "p99-ms",
            "retries",
            "timeouts",
            "dropped",
            "failed",
            "dirty-lost-KB",
            "degraded-s",
        ],
    );
    let baseline = results[0].throughput_mbps();
    for ((name, _), stats) in plans.iter().zip(&results) {
        let f = &stats.faults;
        let p99 = stats.latency_hist_ms.quantile(0.99).unwrap_or(0);
        t.row(&[
            name.clone(),
            format!("{:.1}", stats.throughput_mbps()),
            format!(
                "{:+.1}%",
                (stats.throughput_mbps() / baseline - 1.0) * 100.0
            ),
            p99.to_string(),
            f.retries.to_string(),
            f.timeouts.to_string(),
            f.dropped_messages.to_string(),
            f.failed_subs.to_string(),
            format!("{:.1}", f.dirty_bytes_lost as f64 / 1024.0),
            format!("{:.2}", f.degraded_secs()),
        ]);
    }
    format!(
        "{}All schedules and impairment draws derive from the seed; the \
         table is identical at any --jobs level. 'dirty-lost-KB' is the \
         durability cost of losing the SSD log before the Sec. III-D \
         writeback daemon flushed it; 'degraded-s' sums per-server time \
         crashed, slowed or running without a cache device.\n\n",
        t.block()
    )
}

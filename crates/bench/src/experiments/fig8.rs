//! Fig. 8: the `ior-mpi-io` benchmark — per-process chunks accessed
//! concurrently, i.e. random access from the file system's perspective.

use crate::runpar::par_map;
use crate::{build, mbps, pct, Scale, System, Table, FILE_A};
use ibridge_device::IoDir;
use ibridge_pvfs::RunStats;
use ibridge_workloads::IorMpiIo;

const KB: u64 = 1024;

fn measure(scale: &Scale, dir: IoDir, size: u64, system: System) -> RunStats {
    let procs = 64;
    let make = || IorMpiIo::sized(dir, FILE_A, procs, size, scale.stream_bytes);
    let span = make().span_bytes();
    let mut cluster = build(system, 8, scale);
    cluster.preallocate(FILE_A, span + (1 << 20));
    if dir.is_read() && system == System::IBridge {
        cluster.run(&mut make());
    }
    cluster.run(&mut make())
}

/// Runs Fig. 8(a) writes and 8(b) reads across request sizes.
pub fn run(scale: &Scale) -> String {
    let sizes = [33 * KB, 64 * KB, 65 * KB, 129 * KB];
    let mut out = String::new();
    for (dir, label, paper) in [
        (
            IoDir::Write,
            "Fig 8(a) — ior-mpi-io WRITE throughput (MB/s), 64 procs",
            "paper: iBridge improves writes by 169% on average (SSD-to-disk \
             writeback is highly sequential); 19%/10%/4% of data served by \
             SSD at 33/65/129 KB",
        ),
        (
            IoDir::Read,
            "Fig 8(b) — ior-mpi-io READ throughput (MB/s), 64 procs (iBridge warm)",
            "paper: reads improve 48% on average; even at 129 KB (4% SSD \
             data) improvements reach 35%",
        ),
    ] {
        let mut t = Table::new(
            label,
            &["size", "stock", "iBridge", "improvement", "ssd-bytes"],
        );
        let jobs: Vec<(u64, System)> = sizes
            .iter()
            .flat_map(|&size| [(size, System::Stock), (size, System::IBridge)])
            .collect();
        let results = par_map(jobs, |(size, system)| measure(scale, dir, size, system));
        for (idx, &size) in sizes.iter().enumerate() {
            let (stock, ib) = (&results[2 * idx], &results[2 * idx + 1]);
            let s = stock.throughput_mbps();
            let i = ib.throughput_mbps();
            t.row(&[
                format!("{}KB", size / KB),
                mbps(s),
                mbps(i),
                format!("{:+.0}%", (i - s) / s * 100.0),
                pct(ib.ssd_served_fraction() * 100.0),
            ]);
        }
        out += &t.block();
        out += &format!("{paper}\n\n");
    }
    out
}

//! Metadata-service availability (beyond the paper).
//!
//! The paper's testbed runs one PVFS2 metadata server; iBridge routes
//! the per-server T-value reports (Eq. 1) through it, so its loss
//! degrades clients to stale steering decisions until a restart. This
//! experiment contrasts that single MDS with a raft-style replicated
//! group (`--mds-replicas`, `crates/mds`): the same checkpoint workload
//! runs under each MDS fault plan at 1 and 3 replicas, and the table
//! reports the availability counters side by side — stalled/dropped
//! T-broadcasts and stale-T client decisions for the single MDS versus
//! elections, leader changes and leaderless (recovery) time for the
//! group.
//!
//! Election timeouts and fault schedules all derive from the experiment
//! seed, so the table is byte-identical at any `--jobs`, `--shards` or
//! `--threads` level.

use crate::runpar::par_map;
use crate::{Scale, Table, FILE_A};
use ibridge_core::ibridge_cluster;
use ibridge_des::SimDuration;
use ibridge_faults::{builtin, FaultPlan};
use ibridge_pvfs::{ClusterConfig, RunStats, ServerConfig};
use ibridge_workloads::CheckpointWorkload;

/// The MDS-fault plans this table covers, against the faultless row.
const PLANS: &[&str] = &["none", "mds-crash", "mds-failover", "mds-partition"];

/// Replica counts contrasted per plan.
const REPLICAS: &[usize] = &[1, 3];

/// Fixed probe shape: a checkpoint run long enough (10 epochs, 25 ms of
/// compute each) that the builtin MDS fault windows (80–200 ms) fall
/// mid-run, with a 5 ms T-report cadence so the downtime overlaps many
/// reports. Only the seed and driver knobs follow the CLI.
fn probe(scale: &Scale, replicas: usize, plan: &FaultPlan) -> RunStats {
    let cfg = ClusterConfig {
        n_servers: 4,
        seed: scale.seed,
        shards: scale.shards,
        threads: scale.threads,
        audit_interval: scale.audit_interval,
        mds_replicas: replicas,
        report_interval: SimDuration::from_millis(5),
        server: ServerConfig {
            ra_budget: scale.page_cache,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut cluster = ibridge_cluster(cfg, scale.ssd_capacity);
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        10,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(plan);
    cluster.run(&mut w)
}

/// The `mds-ha` experiment: one row per (replicas, plan) pair.
pub fn run(scale: &Scale) -> String {
    let cases: Vec<(usize, String, FaultPlan)> = REPLICAS
        .iter()
        .flat_map(|&r| {
            PLANS.iter().map(move |&name| {
                let text = builtin(name).expect("builtin listed");
                let plan = FaultPlan::parse(text).expect("builtin parses");
                (r, name.to_string(), plan)
            })
        })
        .collect();
    let results = par_map(cases.clone(), |(r, _, plan)| probe(scale, r, &plan));

    let mut t = Table::new(
        "MDS availability — checkpoint workload under MDS faults (iBridge, 4 servers)",
        &[
            "replicas",
            "plan",
            "MB/s",
            "stalled",
            "stale-T",
            "elections",
            "leader-chg",
            "recovery-ms",
            "failed",
        ],
    );
    for ((replicas, name, _), stats) in cases.iter().zip(&results) {
        let f = &stats.faults;
        t.row(&[
            replicas.to_string(),
            name.clone(),
            format!("{:.1}", stats.throughput_mbps()),
            f.stalled_broadcasts.to_string(),
            f.stale_t_decisions.to_string(),
            f.mds_elections.to_string(),
            f.mds_leader_changes.to_string(),
            format!("{:.1}", f.mds_recovery_ticks as f64 / 1e6),
            f.failed_subs.to_string(),
        ]);
    }
    format!(
        "{}With one replica an MDS crash or partition drops every T-report \
         in its window ('stalled') and clients steer on stale tables \
         ('stale-T') until the restart. With three replicas the group \
         re-elects within a few milliseconds ('elections', 'leader-chg'); \
         'recovery-ms' is total leaderless virtual time, including the \
         startup election. No plan loses requests either way ('failed').\n\n",
        t.block()
    )
}

//! Fig. 13: the request-size threshold sweep — throughput vs SSD wear.

use crate::runpar::par_map;
use crate::{build_ibridge_with, run_once, Scale, System, Table, FILE_A};
use ibridge_core::IBridgeConfig;
use ibridge_device::IoDir;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

/// Runs `mpi-io-test` (65 KB writes, 64 procs) with thresholds from
/// 10 KB to 40 KB; reports throughput normalised to the aligned-64 KB
/// stock reference and SSD usage normalised to the accessed data.
pub fn run(scale: &Scale) -> String {
    let thresholds = [10u64, 20, 30, 40];
    // Job 0 is the aligned reference (the paper normalises to 164 MB/s);
    // jobs 1.. are the threshold sweep.
    let jobs: Vec<Option<u64>> = std::iter::once(None)
        .chain(thresholds.iter().map(|&t| Some(t)))
        .collect();
    let results = par_map(jobs, |job| match job {
        None => {
            let mut aligned =
                MpiIoTest::sized(IoDir::Write, FILE_A, 64, 64 * KB, scale.stream_bytes);
            let aligned_span = aligned.span_bytes();
            run_once(System::Stock, 8, scale, aligned_span, &mut aligned)
        }
        Some(threshold) => {
            let mut cluster = build_ibridge_with(8, scale, threshold * KB, |id| {
                IBridgeConfig::paper_defaults(id)
            });
            let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 64, 65 * KB, scale.stream_bytes);
            cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
            cluster.run(&mut w)
        }
    });
    let reference = results[0].throughput_mbps();

    let mut t = Table::new(
        "Fig 13 — threshold sweep, 65 KB writes, 64 procs",
        &[
            "threshold",
            "throughput(MB/s)",
            "normalized",
            "ssd-usage/accessed",
        ],
    );
    for (threshold, stats) in thresholds.iter().zip(&results[1..]) {
        let appended: u64 = stats.servers.iter().map(|s| s.policy.appended_bytes).sum();
        t.row(&[
            format!("{threshold}KB"),
            format!("{:.1}", stats.throughput_mbps()),
            format!("{:.2}", stats.throughput_mbps() / reference),
            format!("{:.0}%", appended as f64 * 100.0 / stats.bytes as f64),
        ]);
    }
    format!(
        "{}paper: throughput rises with the threshold (+56% at 40 KB over \
         10 KB) but SSD usage grows from 3% to 42% of the accessed data; \
         20 KB balances performance against SSD longevity.\n\n",
        t.block()
    )
}

//! Fig. 12: heterogeneous workloads — `mpi-io-test` (fragments) and
//! `BTIO` (regular random requests) sharing the cluster, under static
//! 1:1 / 1:2 and dynamic SSD partitioning.

use crate::runpar::par_map;
use crate::{build, build_ibridge_with, mbps, Scale, System, Table, FILE_A, FILE_B};
use ibridge_core::{IBridgeConfig, PartitionMode};
use ibridge_device::IoDir;
use ibridge_pvfs::Cluster;
use ibridge_workloads::{Btio, CombinedWorkload, MpiIoTest};

const KB: u64 = 1024;

fn run_one(scale: &Scale, cluster: &mut Cluster) -> (f64, f64, f64) {
    let mpi = MpiIoTest::sized(IoDir::Write, FILE_A, 64, 65 * KB, scale.stream_bytes / 2);
    let bt = Btio::new(
        FILE_B,
        64,
        scale.btio_bytes / 2,
        8,
        ibridge_des::SimDuration::from_millis(20),
    );
    cluster.preallocate(FILE_A, mpi.span_bytes() + (1 << 20));
    cluster.preallocate(FILE_B, bt.span_bytes() + (1 << 20));
    let mut w = CombinedWorkload::new(mpi, bt);
    let a = w.a_procs();
    let b = w.b_procs();
    let stats = cluster.run(&mut w);
    (
        stats.group_throughput_mbps(a),
        stats.group_throughput_mbps(b),
        stats.throughput_mbps(),
    )
}

/// Runs the four system variants of Fig. 12.
pub fn run(scale: &Scale) -> String {
    // The paper uses an 8 GB SSD cache against ~17 GB of combined data;
    // keep the same cache:data ratio at any scale so the partitions are
    // actually contended.
    let data = scale.stream_bytes / 2 + scale.btio_bytes / 2;
    let capacity = (data as f64 * 8.0 / 17.0) as u64 / 8;
    let variants: Vec<(String, Option<PartitionMode>)> = vec![
        ("stock (no SSD)".into(), None),
        (
            "iBridge static 1:1".into(),
            Some(PartitionMode::Static {
                fragment_fraction: 0.5,
            }),
        ),
        (
            "iBridge static 1:2".into(),
            Some(PartitionMode::Static {
                fragment_fraction: 2.0 / 3.0,
            }),
        ),
        ("iBridge dynamic".into(), Some(PartitionMode::Dynamic)),
    ];
    let mut t = Table::new(
        "Fig 12 — heterogeneous run: per-benchmark and aggregate throughput (MB/s)",
        &["system", "mpi-io-test", "BTIO", "aggregate"],
    );
    let results = par_map(variants, |(label, mode)| {
        let (a, b, all) = match mode {
            None => {
                let mut cluster = build(System::Stock, 8, scale);
                run_one(scale, &mut cluster)
            }
            Some(mode) => {
                let mut cluster = build_ibridge_with(8, scale, 20 << 10, move |id| {
                    let mut c = IBridgeConfig::with_capacity(id, capacity);
                    c.partition = mode;
                    c
                });
                run_one(scale, &mut cluster)
            }
        };
        (label, a, b, all)
    });
    for (label, a, b, all) in results {
        t.row(&[label, mbps(a), mbps(b), mbps(all)]);
    }
    format!(
        "{}paper: dynamic partitioning reaches 84 MB/s aggregate — 53% over \
         stock, and 13%/5% over the static 1:1/1:2 splits; BTIO gains the \
         most (its requests are the smallest).\n\n",
        t.block()
    )
}

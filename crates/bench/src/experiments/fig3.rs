//! Fig. 3: the striping magnification effect.
//!
//! 16 processes synchronously issue constant-size requests that span
//! servers 0..k-1 (size k×64 KB) or additionally leave a 1 KB fragment
//! on server k (size k×64 KB + 1 KB). A second program concurrently
//! reads random 64 KB segments that live on server k, so the fragment
//! server is always contended. Throughput of the main program is
//! reported with and without fragments, each with and without a barrier
//! between iterations — the loss grows with k.

use crate::{mbps, Scale, System, Table, FILE_A, FILE_B};
use ibridge_des::rng::{stream_rng, streams};
use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};
use ibridge_workloads::CombinedWorkload;
use rand::rngs::StdRng;
use rand::Rng;

const KB: u64 = 1024;
const SU: u64 = 64 * KB;

/// Main program: requests of `k*SU (+1 KB)` aligned to start on server 0
/// of a `k+1`-server cluster.
#[derive(Debug, Clone)]
struct SpanReqs {
    k: u64,
    fragment: bool,
    procs: usize,
    iters: u64,
    barrier: bool,
}

impl SpanReqs {
    fn len(&self) -> u64 {
        self.k * SU + if self.fragment { KB } else { 0 }
    }

    fn span_bytes(&self) -> u64 {
        // Requests are placed at strides of (k+1) units so each starts
        // on server 0.
        (self.iters * self.procs as u64) * (self.k + 1) * SU + SU
    }
}

impl Workload for SpanReqs {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        if iter >= self.iters {
            return None;
        }
        let r = iter * self.procs as u64 + proc as u64;
        Some(WorkItem {
            req: FileRequest {
                dir: IoDir::Read,
                file: FILE_A,
                offset: r * (self.k + 1) * SU,
                len: self.len(),
            },
            think: SimDuration::ZERO,
        })
    }

    fn barrier(&self) -> bool {
        self.barrier
    }
}

/// Antagonist: random 64 KB reads of units owned by server `k`.
#[derive(Debug)]
struct RandomOnServerK {
    k: u64,
    procs: usize,
    iters: u64,
    units: u64,
    rng: StdRng,
    file: FileHandle,
}

impl Workload for RandomOnServerK {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, _proc: usize, iter: u64) -> Option<WorkItem> {
        if iter >= self.iters {
            return None;
        }
        // Unit j*(k+1)+k lives on server k of a (k+1)-server layout.
        let j = self.rng.gen_range(0..self.units);
        Some(WorkItem {
            req: FileRequest {
                dir: IoDir::Read,
                file: self.file,
                offset: (j * (self.k + 1) + self.k) * SU,
                len: SU,
            },
            think: SimDuration::ZERO,
        })
    }
}

/// One point of the Fig. 3 grid: main-program throughput for a given
/// span count, barrier setting and fragment setting.
fn measure(scale: &Scale, k: u64, barrier: bool, fragment: bool) -> f64 {
    let iters = (scale.stream_bytes / 8 / (16 * k * SU)).clamp(8, 256);
    let main = SpanReqs {
        k,
        fragment,
        procs: 16,
        iters,
        barrier,
    };
    let span = main.span_bytes();
    let antagonist_units = span / ((k + 1) * SU);
    let antagonist = RandomOnServerK {
        k,
        procs: 4,
        iters: iters * 8,
        units: antagonist_units.max(1),
        rng: stream_rng(scale.seed, streams::WORKLOAD),
        file: FILE_B,
    };
    let mut combined = CombinedWorkload::new(main, antagonist);
    let mut cluster = crate::build(System::Stock, k as usize + 1, scale);
    cluster.preallocate(FILE_A, span + SU);
    cluster.preallocate(FILE_B, span + SU);
    let stats = cluster.run(&mut combined);
    // Throughput of the main program only.
    stats.group_throughput_mbps(combined.a_procs())
}

/// Runs the Fig. 3 grid.
pub fn run(scale: &Scale) -> String {
    let mut t = Table::new(
        "Fig 3 — main-program throughput (MB/s) vs servers serving non-fragment data",
        &[
            "k",
            "no-frag",
            "frag",
            "loss",
            "no-frag+barrier",
            "frag+barrier",
            "loss(barrier)",
        ],
    );
    let ks = [1u64, 2, 4, 8];
    let jobs: Vec<(u64, bool, bool)> = ks
        .iter()
        .flat_map(|&k| {
            [false, true]
                .into_iter()
                .flat_map(move |barrier| [(k, barrier, false), (k, barrier, true)])
        })
        .collect();
    let results = crate::par_map(jobs, |(k, barrier, fragment)| {
        measure(scale, k, barrier, fragment)
    });
    for (i, k) in ks.iter().enumerate() {
        let mut cells = vec![k.to_string()];
        for b in 0..2 {
            let pair = &results[i * 4 + b * 2..i * 4 + b * 2 + 2];
            let loss = (pair[0] - pair[1]) / pair[0] * 100.0;
            cells.push(mbps(pair[0]));
            cells.push(mbps(pair[1]));
            cells.push(format!("{loss:.0}%"));
        }
        t.row(&cells);
    }
    format!(
        "{}paper: throughput with fragments is consistently lower and the \
         relative loss grows with k (striping magnification); barriers \
         amplify the penalty of the slow fragment server.\n\n",
        t.block()
    )
}

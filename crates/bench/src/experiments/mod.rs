//! One module per paper table/figure. Every `run` function *returns* the
//! same rows/series the paper reports (with the paper's numbers cited
//! where published), measured on the simulated cluster, as rendered text.
//!
//! Experiments are compute-then-render: each data point is an independent
//! cluster simulation submitted to [`crate::runpar`], and rendering joins
//! the results in submission order — so the output is byte-identical at
//! any `--jobs` level, and whole experiments can themselves run
//! concurrently.

pub mod ablate;
pub mod btio_figs;
pub mod faults;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4_5;
pub mod fig6_7;
pub mod fig8;
pub mod logmaint;
pub mod mds_ha;
pub mod recovery;
pub mod summary;
pub mod tables;

use crate::Scale;

/// An experiment: its CLI name, what it regenerates, and its runner.
pub struct Experiment {
    /// CLI name (e.g. `fig4`).
    pub name: &'static str,
    /// What it reproduces.
    pub what: &'static str,
    /// Runner: computes every data point (in parallel where the budget
    /// allows) and returns the rendered tables/notes.
    pub run: fn(&Scale) -> String,
}

/// All experiments in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            what: "Table I: unaligned/random percentages of the four traces",
            run: tables::table1,
        },
        Experiment {
            name: "table2",
            what: "Table II: device microbenchmark (4 KB requests)",
            run: tables::table2,
        },
        Experiment {
            name: "fig2a",
            what: "Fig 2(a): stock throughput vs request size and process count",
            run: fig2::fig2a,
        },
        Experiment {
            name: "fig2b",
            what: "Fig 2(b): stock throughput, 64 KB requests with offsets",
            run: fig2::fig2b,
        },
        Experiment {
            name: "fig2cde",
            what: "Fig 2(c,d,e): block-level request size distributions",
            run: fig2::fig2cde,
        },
        Experiment {
            name: "fig3",
            what: "Fig 3: striping magnification effect",
            run: fig3::run,
        },
        Experiment {
            name: "fig4",
            what: "Fig 4(a,b): mpi-io-test with iBridge, sizes and offsets",
            run: fig4_5::fig4,
        },
        Experiment {
            name: "fig5",
            what: "Fig 5: block-level distribution with iBridge (+10 KB reads)",
            run: fig4_5::fig5,
        },
        Experiment {
            name: "fig6",
            what: "Fig 6: scalability with process count (65 KB requests)",
            run: fig6_7::fig6,
        },
        Experiment {
            name: "fig7",
            what: "Fig 7(a,b): scalability with data-server count",
            run: fig6_7::fig7,
        },
        Experiment {
            name: "fig8",
            what: "Fig 8(a,b): ior-mpi-io across request sizes",
            run: fig8::run,
        },
        Experiment {
            name: "fig9",
            what: "Fig 9: BTIO execution time vs process count",
            run: btio_figs::fig9,
        },
        Experiment {
            name: "fig10",
            what: "Fig 10: BTIO on disk-only vs SSD-only vs iBridge",
            run: btio_figs::fig10,
        },
        Experiment {
            name: "fig11",
            what: "Fig 11: BTIO I/O time vs SSD capacity",
            run: btio_figs::fig11,
        },
        Experiment {
            name: "table3",
            what: "Table III: trace-replay request service times",
            run: tables::table3,
        },
        Experiment {
            name: "fig12",
            what: "Fig 12: heterogeneous workloads and SSD partitioning",
            run: fig12::run,
        },
        Experiment {
            name: "fig13",
            what: "Fig 13: request-size threshold sweep",
            run: fig13::run,
        },
        Experiment {
            name: "ablate",
            what: "Ablations: Eq. 3 boost, CFQ anticipation, schedulers, NCQ, \
                   collective I/O, data sieving, networks (beyond the paper)",
            run: ablate::run,
        },
        Experiment {
            name: "faults",
            what: "Fault injection: crash, SSD loss, fail-slow, network faults \
                   vs the faultless baseline (beyond the paper)",
            run: faults::run,
        },
        Experiment {
            name: "mds-ha",
            what: "MDS availability: single MDS vs replicated group under \
                   crash, failover and partition plans (beyond the paper)",
            run: mds_ha::run,
        },
        Experiment {
            name: "recovery",
            what: "Crash recovery: log corruption plans vs the recovery fsck, \
                   plus a segment-parallel backup scan (beyond the paper)",
            run: recovery::run,
        },
        Experiment {
            name: "logmaint",
            what: "Backup-log maintenance: segmented log compaction, indexed \
                   checkpoints, idle-window scheduling and O(dirty) recovery \
                   (beyond the paper)",
            run: logmaint::run,
        },
        Experiment {
            name: "summary",
            what: "Headline comparisons, mean ± sd over 5 seeds",
            run: summary::run,
        },
    ]
}

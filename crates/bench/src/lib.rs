//! Experiment harness regenerating every table and figure of the iBridge
//! paper.
//!
//! Each experiment lives in its own module under [`experiments`] and
//! prints the same rows/series the paper reports, side by side with the
//! paper's published numbers where they are given. Absolute values come
//! from the simulator and are not expected to match the paper's testbed;
//! the *shapes* (who wins, by roughly what factor, where crossovers
//! fall) are the reproduction target. `EXPERIMENTS.md` records both.
//!
//! Run everything with `cargo run --release -p ibridge-bench --bin expt
//! -- all`, or a single experiment with e.g. `... -- fig4`.

pub mod alloc_count;
pub mod experiments;
pub mod obs_report;
pub mod runpar;
pub mod table;

pub use runpar::{par_map, par_table_rows};
pub use table::Table;

use ibridge_core::{
    ibridge_cluster, ssd_only_cluster, stock_cluster, IBridgeConfig, IBridgePolicy,
};
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{Cluster, ClusterConfig, RunStats, ServerConfig, Workload};

/// The cluster variants the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Disks only, no flagging (the paper's "stock").
    Stock,
    /// Disks + per-server SSD cache with the iBridge scheme.
    IBridge,
    /// Datafiles directly on SSDs, no iBridge (Fig. 10's comparator).
    SsdOnly,
}

impl System {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Stock => "stock",
            System::IBridge => "iBridge",
            System::SsdOnly => "SSD-only",
        }
    }
}

/// Experiment scale knobs. The default ("quick") scale keeps the full
/// suite to minutes; `--full` restores the paper's data sizes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Bytes moved by the streaming benchmarks (paper: 10 GB).
    pub stream_bytes: u64,
    /// BTIO data set (paper class C: 6.8 GB).
    pub btio_bytes: u64,
    /// Requests per synthesised trace.
    pub trace_requests: usize,
    /// iBridge SSD partition (paper: 10 GB).
    pub ssd_capacity: u64,
    /// Per-datafile page-cache budget. Scaled down with the data sizes
    /// so the cache:data ratio stays realistic (a real server's page
    /// cache is far smaller than a 10 GB data set).
    pub page_cache: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Data-server shards (logical processes) per cluster, forwarded to
    /// every cluster the experiments build (`expt --shards`). Event
    /// order is intrinsic to the simulated system, so experiment output
    /// is byte-identical at any shard count.
    pub shards: usize,
    /// Executor threads for the intra-run PDES driver (`expt
    /// --threads`), forwarded to every cluster the experiments build.
    /// At 1 (or with a single LP) the serial reference driver runs;
    /// above 1 ready LPs execute concurrently between deterministic
    /// window barriers. Output is byte-identical at any thread count.
    pub threads: usize,
    /// A user-supplied fault plan (`expt --fault-plan ...`); the
    /// `faults` experiment adds a row for it next to the builtin plans.
    /// Leaked to `'static` by the CLI so `Scale` stays `Copy`.
    pub fault_plan: Option<&'static ibridge_faults::FaultPlan>,
    /// Online invariant-auditor cadence (`expt --audit`), forwarded to
    /// every cluster the experiments build. The auditor is read-only, so
    /// experiment output is byte-identical with it on or off.
    pub audit_interval: Option<ibridge_des::SimDuration>,
    /// Metadata-service replicas (`expt --mds-replicas`), forwarded to
    /// every cluster the experiments build. 1 is the single MDS of the
    /// paper's testbed; 3 or 5 run a raft-style replicated group whose
    /// elections and failover are deterministic in virtual time.
    pub mds_replicas: usize,
}

impl Scale {
    /// Laptop-friendly scale (256 MB streams).
    pub fn quick() -> Self {
        Scale {
            stream_bytes: 256 << 20,
            btio_bytes: 96 << 20,
            trace_requests: 3_000,
            ssd_capacity: 10 << 30,
            page_cache: 512 << 10,
            seed: 42,
            shards: 1,
            threads: 1,
            fault_plan: None,
            audit_interval: None,
            mds_replicas: 1,
        }
    }

    /// The paper's data sizes. Slow: use for final numbers only.
    pub fn full() -> Self {
        Scale {
            stream_bytes: 10 << 30,
            btio_bytes: 6_800 << 20,
            trace_requests: 50_000,
            ssd_capacity: 10 << 30,
            page_cache: 8 << 20,
            seed: 42,
            shards: 1,
            threads: 1,
            fault_plan: None,
            audit_interval: None,
            mds_replicas: 1,
        }
    }
}

/// The shared experiment file handle.
pub const FILE_A: FileHandle = FileHandle(1);
/// Second file for heterogeneous runs.
pub const FILE_B: FileHandle = FileHandle(2);

/// Builds a cluster of the given variant with `n_servers` servers.
pub fn build(system: System, n_servers: usize, scale: &Scale) -> Cluster {
    let cfg = ClusterConfig {
        n_servers,
        seed: scale.seed,
        shards: scale.shards,
        threads: scale.threads,
        audit_interval: scale.audit_interval,
        mds_replicas: scale.mds_replicas,
        server: ServerConfig {
            ra_budget: scale.page_cache,
            ..Default::default()
        },
        ..Default::default()
    };
    match system {
        System::Stock => stock_cluster(cfg),
        System::IBridge => ibridge_cluster(cfg, scale.ssd_capacity),
        System::SsdOnly => ssd_only_cluster(cfg),
    }
}

/// Builds an iBridge cluster with explicit policy configuration
/// (threshold sweeps, static partitions, ablations).
pub fn build_ibridge_with(
    n_servers: usize,
    scale: &Scale,
    threshold: u64,
    make: impl Fn(usize) -> IBridgeConfig,
) -> Cluster {
    let cfg = ClusterConfig {
        n_servers,
        seed: scale.seed,
        shards: scale.shards,
        threads: scale.threads,
        audit_interval: scale.audit_interval,
        mds_replicas: scale.mds_replicas,
        threshold,
        flag_fragments: true,
        server: ServerConfig {
            with_cache_dev: true,
            ra_budget: scale.page_cache,
            ..Default::default()
        },
        ..Default::default()
    };
    Cluster::new(cfg, move |id| Box::new(IBridgePolicy::new(make(id))))
}

/// Runs a workload once on a fresh cluster (write experiments).
pub fn run_once(
    system: System,
    n_servers: usize,
    scale: &Scale,
    span: u64,
    workload: &mut dyn Workload,
) -> RunStats {
    let mut cluster = build(system, n_servers, scale);
    cluster.preallocate(FILE_A, span + (1 << 20));
    cluster.run(workload)
}

/// Runs a read workload twice on the same cluster and returns the
/// second (warm-cache) run — the paper's repeated-production-run
/// scenario, which is where iBridge's pre-loading pays off.
pub fn run_warm(
    system: System,
    n_servers: usize,
    scale: &Scale,
    span: u64,
    make_workload: &mut dyn FnMut() -> Box<dyn Workload>,
) -> RunStats {
    let mut cluster = build(system, n_servers, scale);
    cluster.preallocate(FILE_A, span + (1 << 20));
    let mut warmup = make_workload();
    cluster.run(warmup.as_mut());
    let mut measured = make_workload();
    cluster.run(measured.as_mut())
}

/// Formats MB/s with one decimal.
pub fn mbps(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibridge_device::IoDir;
    use ibridge_workloads::MpiIoTest;

    #[test]
    fn build_variants_run() {
        let scale = Scale {
            stream_bytes: 4 << 20,
            ..Scale::quick()
        };
        for system in [System::Stock, System::IBridge, System::SsdOnly] {
            let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 4, 65 * 1024, scale.stream_bytes);
            let span = w.span_bytes();
            let stats = run_once(system, 4, &scale, span, &mut w);
            assert!(stats.throughput_mbps() > 0.0, "{system:?}");
        }
    }

    #[test]
    fn warm_run_uses_same_cluster_state() {
        let scale = Scale {
            stream_bytes: 4 << 20,
            ..Scale::quick()
        };
        let span = scale.stream_bytes * 2;
        let stats = run_warm(System::IBridge, 4, &scale, span, &mut || {
            Box::new(MpiIoTest::sized(IoDir::Read, FILE_A, 4, 65 * 1024, 4 << 20))
        });
        let hits: u64 = stats.servers.iter().map(|s| s.policy.read_hits).sum();
        assert!(hits > 0, "warm run must hit the cache");
    }
}

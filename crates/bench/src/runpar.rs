//! Deterministic parallel execution of independent experiment jobs.
//!
//! Every data point of the harness is an independent cluster simulation
//! in its own virtual time, so host-level parallelism cannot change any
//! measured value — only the wall clock. This module exploits that with
//! a dependency-free worker pool built on [`std::thread::scope`]:
//!
//! * [`par_map`] runs one closure per input on up to [`jobs`] worker
//!   threads and returns the results **in submission order**, so
//!   rendered tables are byte-identical to a sequential run.
//! * [`par_table_rows`] is the common table-filling special case.
//! * The worker budget is a process-wide token pool: nested `par_map`
//!   calls (an experiment parallelising its rows while `expt` runs whole
//!   experiments concurrently) share the same budget instead of
//!   multiplying it, so the host is never oversubscribed.
//!
//! The budget resolves, in order: [`set_jobs`] (the `--jobs` flag), the
//! `IBRIDGE_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Explicit override (0 = unset). Set once by the CLI before any work.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Extra-worker tokens still available, `None` until first use (or after
/// a [`set_jobs`] reset). The pool holds `jobs() - 1` tokens: the calling
/// thread always acts as one worker without a token.
static TOKENS: Mutex<Option<usize>> = Mutex::new(None);

/// Sets the worker budget (the `--jobs N` flag). Call before spawning
/// parallel work; resets the shared token pool.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
    *TOKENS.lock().unwrap() = None;
}

/// The effective worker budget: [`set_jobs`] value, else `IBRIDGE_JOBS`,
/// else the machine's available parallelism.
pub fn jobs() -> usize {
    let set = JOBS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    if let Ok(v) = std::env::var("IBRIDGE_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Takes up to `want` extra-worker tokens from the shared pool.
fn acquire_tokens(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let mut guard = TOKENS.lock().unwrap();
    let avail = guard.get_or_insert_with(|| jobs().saturating_sub(1));
    let got = want.min(*avail);
    *avail -= got;
    got
}

/// Returns tokens to the pool.
fn release_tokens(n: usize) {
    if n == 0 {
        return;
    }
    if let Some(avail) = TOKENS.lock().unwrap().as_mut() {
        *avail += n;
    }
}

/// Maps `f` over `inputs` on up to [`jobs`] threads (shared budget) and
/// returns the results in submission order. Falls back to a plain
/// sequential map when the budget (or the input) is a single job.
pub fn par_map<T, R>(inputs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let extra = acquire_tokens(inputs.len().saturating_sub(1));
    let out = par_map_workers(extra + 1, inputs, f);
    release_tokens(extra);
    out
}

/// [`par_map`] with an explicit worker count, bypassing the shared token
/// pool — determinism tests use this to compare worker counts directly.
pub fn par_map_jobs<T, R>(workers: usize, inputs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    par_map_workers(workers.max(1), inputs, f)
}

fn par_map_workers<T, R>(workers: usize, inputs: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    // Observability: every fan-out — parallel or sequential — claims one
    // fork point, and each task runs inside its own scope so spans land
    // in per-task buffers labelled by submission index, never by thread.
    // Task-scope exit is also the deterministic flush point for worker
    // metrics (scoped join does not order TLS destructors). One atomic
    // load when observability is off.
    let fork = ibridge_obs::active().then(ibridge_obs::trace::fork_point);
    let run_task = |i: usize, input: T| match &fork {
        Some(fp) => {
            let _scope = ibridge_obs::trace::enter_task(fp, i as u32);
            f(input)
        }
        None => f(input),
    };
    let workers = workers.min(inputs.len());
    if workers <= 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, t)| run_task(i, t))
            .collect();
    }
    // Shared work list and per-slot result cells. A Mutex per cell is
    // uncontended (each is touched by exactly one worker at a time) and
    // keeps the pool free of unsafe code; its cost is nanoseconds against
    // jobs that each run a full cluster simulation.
    let items: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let run_task = &run_task;
    std::thread::scope(|scope| {
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            let input = item.lock().unwrap().take().expect("job taken twice");
            let r = run_task(i, input);
            *results[i].lock().unwrap() = Some(r);
        };
        for _ in 1..workers {
            scope.spawn(worker);
        }
        worker();
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker dropped a result"))
        .collect()
}

/// Fills `table` with one row per input, computing the rows in parallel
/// but appending them in input order.
pub fn par_table_rows<T: Send>(
    table: &mut crate::Table,
    inputs: Vec<T>,
    f: impl Fn(T) -> Vec<String> + Sync,
) {
    for row in par_map(inputs, f) {
        table.row(&row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_submission_order() {
        let inputs: Vec<u64> = (0..97).collect();
        let seq: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 8, 128] {
            let par = par_map_jobs(workers, inputs.clone(), |x| x * x);
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map_jobs(8, Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(par_map_jobs(8, vec![5u64], |x| x + 1), vec![6]);
    }

    #[test]
    fn token_pool_bounds_nesting() {
        // Nested par_map must not deadlock and must still return ordered
        // results even when the outer level holds the whole budget.
        let outer: Vec<u64> = (0..8).collect();
        let got = par_map(outer, |i| {
            let inner: Vec<u64> = (0..16).collect();
            par_map(inner, |j| i * 100 + j).iter().sum::<u64>()
        });
        let want: Vec<u64> = (0..8)
            .map(|i| (0..16).map(|j| i * 100 + j).sum::<u64>())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_table_rows_appends_in_order() {
        let mut t = crate::Table::new("demo", &["i", "sq"]);
        par_table_rows(&mut t, (0..10u64).collect(), |i| {
            vec![i.to_string(), (i * i).to_string()]
        });
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Rows start after title, header, rule.
        assert!(lines[3].starts_with('0'));
        assert!(lines[12].starts_with("9"));
    }
}

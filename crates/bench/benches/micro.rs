//! Criterion microbenchmarks of the simulator's hot components, plus a
//! small end-to-end cluster run. These measure the *implementation*
//! (wall time), unlike the `expt` binary which measures the *simulated
//! system* (virtual time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ibridge_core::{CircularLog, DiskTimeModel, EntryType, MappingTable};
use ibridge_des::{SimDuration, SimTime, Simulation};
use ibridge_device::{DevOp, DiskModel, DiskProfile};
use ibridge_iosched::{BlockRequest, Cfq, CfqConfig, Decision, Scheduler};
use ibridge_localfs::{Extent, FileHandle};
use ibridge_pvfs::Layout;
use ibridge_workloads::{AppProfile, Trace};
use std::hint::black_box;

fn des_kernel(c: &mut Criterion) {
    c.bench_function("des/schedule+pop 10k events", |b| {
        b.iter(|| {
            let mut sim: Simulation<u64> = Simulation::new();
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = sim.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    // The calendar hot path at event-loop scale: a rolling horizon of
    // timers where a third are cancelled before they fire — the pvfs
    // cluster's actual mix (I/O completions plus cancelled anticipation
    // deadlines).
    c.bench_function("des/schedule+cancel+pop 1M events", |b| {
        b.iter(|| {
            let mut sim: Simulation<u64> = Simulation::new();
            let mut pending = std::collections::VecDeque::with_capacity(64);
            let mut acc = 0u64;
            let mut fired = 0u64;
            let mut i = 0u64;
            while fired < 1_000_000 {
                let at = sim.now() + SimDuration::from_nanos((i * 7919) % 10_000 + 1);
                pending.push_back(sim.schedule_at(at, i));
                if pending.len() > 64 {
                    // Cancel the oldest still-tracked handle (may already
                    // have fired — cancellation must absorb both cases).
                    let id = pending.pop_front().unwrap();
                    sim.cancel(id);
                }
                if i.is_multiple_of(2) {
                    if let Some((_, e)) = sim.pop() {
                        acc = acc.wrapping_add(e);
                        fired += 1;
                    }
                }
                i += 1;
            }
            black_box((acc, sim.pending()))
        })
    });
    // Fire-and-forget fast path: no cancellation handles at all.
    c.bench_function("des/post+pop 1M events", |b| {
        b.iter(|| {
            let mut sim: Simulation<u64> = Simulation::new();
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                sim.post_in(SimDuration::from_nanos((i * 7919) % 10_000 + 1), i);
                if i % 2 == 1 {
                    let (_, a) = sim.pop().expect("queue non-empty");
                    let (_, b) = sim.pop().expect("queue non-empty");
                    acc = acc.wrapping_add(a).wrapping_add(b);
                }
            }
            black_box(acc)
        })
    });
}

fn disk_model(c: &mut Criterion) {
    c.bench_function("device/disk service 1k scattered ops", |b| {
        b.iter_batched(
            || DiskModel::new(DiskProfile::hp_mm0500()),
            |mut disk| {
                let mut t = SimTime::ZERO;
                let mut lbn = 1u64;
                for i in 0..1_000u64 {
                    lbn = (lbn * 48_271 + i) % 1_900_000_000;
                    let d = disk.service(t, &DevOp::read(lbn, 128));
                    t += d;
                }
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
}

fn cfq_sched(c: &mut Criterion) {
    c.bench_function("iosched/cfq add+dispatch 1k requests, 16 streams", |b| {
        b.iter(|| {
            let mut s = Cfq::new(CfqConfig::default());
            let t = SimTime::ZERO;
            for i in 0..1_000u64 {
                s.add(
                    t,
                    BlockRequest::new(
                        ibridge_device::IoDir::Read,
                        (i * 977) % 1_000_000,
                        8,
                        i % 16,
                        t,
                        i,
                    ),
                );
            }
            let mut head = 0;
            let mut n = 0;
            loop {
                match s.dispatch(t + SimDuration::from_secs(1), head) {
                    Decision::Request(r) => {
                        head = r.end();
                        n += 1;
                    }
                    Decision::WaitUntil(_) => break,
                    Decision::Empty => break,
                }
            }
            black_box(n)
        })
    });
}

fn layout_decompose(c: &mut Criterion) {
    let layout = Layout::default_with_servers(8);
    c.bench_function("pvfs/decompose 10k unaligned requests", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..10_000u64 {
                let d = layout.decompose(i * 66_560, 65 * 1024);
                total += d.len() as u64;
            }
            black_box(total)
        })
    });
}

fn cache_structures(c: &mut Criterion) {
    c.bench_function("core/mapping-table insert+lookup+evict 1k", |b| {
        b.iter(|| {
            let mut t = MappingTable::new();
            for i in 0..1_000u64 {
                let id = t.next_id();
                t.insert(
                    id,
                    FileHandle(1),
                    i * 8192,
                    4096,
                    vec![Extent {
                        lbn: i * 8,
                        sectors: 8,
                    }]
                    .into(),
                    EntryType::Fragment,
                    0.001,
                    false,
                    false,
                    i,
                );
            }
            let mut hits = 0;
            for i in 0..1_000u64 {
                if t.lookup_covering(FileHandle(1), i * 8192, 4096).is_some() {
                    hits += 1;
                }
            }
            while let Some(v) = t.lru_victim(EntryType::Fragment) {
                t.remove(v);
            }
            black_box(hits)
        })
    });
    c.bench_function("core/circular-log append 1k", |b| {
        b.iter(|| {
            let mut log = CircularLog::new(1 << 20);
            for i in 0..1_000u64 {
                let _ = log.append(64, i);
            }
            black_box(log.resident_sectors())
        })
    });
    c.bench_function("core/eq1 model update 10k", |b| {
        b.iter_batched(
            || DiskTimeModel::new(DiskProfile::hp_mm0500()),
            |mut m| {
                for i in 0..10_000u64 {
                    m.serve_disk((i * 31_337) % 1_000_000_000, 4096);
                }
                black_box(m.value())
            },
            BatchSize::SmallInput,
        )
    });
}

fn trace_synthesis(c: &mut Criterion) {
    c.bench_function("workloads/synthesize 10k-request S3D trace", |b| {
        b.iter(|| {
            let t = Trace::synthesize(&AppProfile::s3d(), 10_000, 1 << 30, 7);
            black_box(t.records.len())
        })
    });
}

fn end_to_end(c: &mut Criterion) {
    use ibridge_bench::{run_once, Scale, System, FILE_A};
    use ibridge_workloads::MpiIoTest;
    let scale = Scale {
        stream_bytes: 8 << 20,
        ..Scale::quick()
    };
    c.bench_function("cluster/e2e 8MB unaligned write, 8 servers", |b| {
        b.iter(|| {
            let mut w = MpiIoTest::sized(
                ibridge_device::IoDir::Write,
                FILE_A,
                16,
                65 * 1024,
                scale.stream_bytes,
            );
            let span = w.span_bytes();
            let stats = run_once(System::IBridge, 8, &scale, span, &mut w);
            black_box(stats.bytes)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = des_kernel, disk_model, cfq_sched, layout_decompose,
              cache_structures, trace_synthesis, end_to_end
);
criterion_main!(benches);

//! Sharding the cluster into logical processes must not change any
//! simulated result. Event order under `ibridge_des::pdes` is keyed by
//! `(time, source node, per-node sequence)` — intrinsic to the simulated
//! system, not to the LP grouping or to which executor thread ran an
//! LP's window — so `--shards N` and `--threads T` may only change how
//! the calendar is stored and who advances it, never what it
//! dispatches. These tests run the same job matrix at shard counts
//! 1/2/8 × thread counts 1/4 (and across `--jobs` levels, and under
//! cross-LP fault plans) and require *identical* outputs — not
//! approximately equal.
//!
//! The fingerprint is the full `Debug` rendering of `RunStats`: Rust's
//! `f64` Debug format is shortest-roundtrip, so two renderings are equal
//! iff every float is bit-identical.

use ibridge_bench::runpar::par_map_jobs;
use ibridge_bench::{build, run_once, Scale, System, FILE_A};
use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_faults::{builtin, FaultPlan};
use ibridge_workloads::{CheckpointWorkload, MpiIoTest};

const KB: u64 = 1024;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn scale_with(seed: u64, shards: usize, threads: usize) -> Scale {
    Scale {
        stream_bytes: 16 << 20,
        seed,
        shards,
        threads,
        ..Scale::quick()
    }
}

/// One cell of the matrix: a full-stats fingerprint of a run at the
/// given shard and executor-thread counts. 8 servers so `--shards 8`
/// really builds 8 LPs (4 would silently clamp).
fn run_cell((seed, system, size, shards, threads): (u64, System, u64, usize, usize)) -> String {
    let scale = scale_with(seed, shards, threads);
    let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 16, size, scale.stream_bytes);
    let span = w.span_bytes();
    let stats = run_once(system, 8, &scale, span, &mut w);
    format!("{stats:?}")
}

fn matrix(shards: usize, threads: usize) -> Vec<(u64, System, u64, usize, usize)> {
    let mut jobs = Vec::new();
    for seed in [42u64, 7, 1234] {
        for system in [System::Stock, System::IBridge] {
            for size in [64 * KB, 65 * KB] {
                jobs.push((seed, system, size, shards, threads));
            }
        }
    }
    jobs
}

#[test]
fn multi_seed_stats_identical_across_shard_and_thread_counts() {
    let baseline: Vec<String> = matrix(1, 1).into_iter().map(run_cell).collect();
    for shards in [2, 8] {
        for threads in THREAD_COUNTS {
            let cell: Vec<String> = matrix(shards, threads).into_iter().map(run_cell).collect();
            assert_eq!(
                cell, baseline,
                "shards={shards} threads={threads} changed simulated results"
            );
        }
    }
}

#[test]
fn shard_identity_holds_at_any_jobs_level() {
    // The full shards × threads × seeds × systems matrix through the
    // worker pool at two budgets: no axis may perturb another. Threaded
    // windows inside a run and `--jobs` workers across runs compose —
    // both layers ride the same pool.
    let all: Vec<(u64, System, u64, usize, usize)> = SHARD_COUNTS
        .iter()
        .flat_map(|&s| THREAD_COUNTS.iter().flat_map(move |&t| matrix(s, t)))
        .collect();
    let seq = par_map_jobs(1, all.clone(), run_cell);
    let par = par_map_jobs(8, all, run_cell);
    assert_eq!(seq, par, "--jobs changed results on a sharded cluster");
    // And within each jobs level, the shard/thread axes themselves must
    // collapse: every (shards, threads) block equals the first block
    // (shards=1, threads=1).
    let blocks = SHARD_COUNTS.len() * THREAD_COUNTS.len();
    let per_block = seq.len() / blocks;
    for b in 1..blocks {
        let shards = SHARD_COUNTS[b / THREAD_COUNTS.len()];
        let threads = THREAD_COUNTS[b % THREAD_COUNTS.len()];
        assert_eq!(
            seq[b * per_block..(b + 1) * per_block],
            seq[..per_block],
            "shards={shards} threads={threads} diverged from shards=1 threads=1"
        );
    }
}

/// The fault probe from the `faults` experiment: a checkpoint workload
/// long enough (hundreds of virtual milliseconds) that the builtin
/// plans' fault windows land mid-run.
fn fault_cell(plan_text: &str, seed: u64, shards: usize, threads: usize) -> String {
    let plan = FaultPlan::parse(plan_text).expect("parses");
    let scale = scale_with(seed, shards, threads);
    let mut cluster = build(System::IBridge, 4, &scale);
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        4,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(&plan);
    let stats = cluster.run(&mut w);
    assert!(
        stats.faults.crashes > 0 || stats.faults.dropped_messages > 0,
        "no fault landed — probe too short to exercise cross-LP fault delivery"
    );
    format!("{stats:?}")
}

/// The replicated-MDS probe: the `mds-ha` experiment's shape (4-server
/// iBridge, 5 ms T-report cadence, 3-replica group) under a failover
/// plan, so elections, log replication, leader-crash fencing and the
/// broadcast fan-out all run while the matrix varies the driver knobs.
fn mds_cell((plan_text, seed, shards, threads): (&str, u64, usize, usize)) -> String {
    let plan = FaultPlan::parse(plan_text).expect("parses");
    let scale = scale_with(seed, shards, threads);
    let cfg = ibridge_pvfs::ClusterConfig {
        n_servers: 4,
        seed: scale.seed,
        shards: scale.shards,
        threads: scale.threads,
        mds_replicas: 3,
        report_interval: SimDuration::from_millis(5),
        ..Default::default()
    };
    let mut cluster = ibridge_core::ibridge_cluster(cfg, scale.ssd_capacity);
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        10,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(&plan);
    let stats = cluster.run(&mut w);
    assert!(
        stats.faults.mds_elections >= 2 && stats.faults.mds_crashes == 1,
        "failover did not land — probe too short: {:?}",
        stats.faults
    );
    format!("{stats:?}")
}

#[test]
fn replicated_mds_identical_across_shard_thread_and_jobs_levels() {
    let failover = builtin("mds-failover").expect("builtin");
    let partition = builtin("mds-partition").expect("builtin");
    for plan in [failover, partition] {
        let baseline = mds_cell((plan, 42, 1, 1));
        let mut cells = Vec::new();
        for shards in [1usize, 4] {
            for threads in [1usize, 4] {
                cells.push((plan, 42u64, shards, threads));
            }
        }
        // Across the shard × thread grid through the worker pool at two
        // budgets: neither the PDES driver nor `--jobs` may perturb the
        // replicated run.
        let seq = par_map_jobs(1, cells.clone(), mds_cell);
        let par = par_map_jobs(8, cells, mds_cell);
        assert_eq!(
            seq, par,
            "--jobs changed a replicated-MDS run\nplan:\n{plan}"
        );
        for (i, cell) in seq.iter().enumerate() {
            assert_eq!(
                cell, &baseline,
                "grid point {i} diverged from shards=1 threads=1\nplan:\n{plan}"
            );
        }
    }
}

#[test]
fn fault_plans_identical_across_shard_and_thread_counts() {
    // "crash" kills and restarts a server (crash teardown, drain kicks
    // and restart recovery all cross the LP boundary); "net" drops,
    // delays and duplicates messages on the client↔server links (every
    // impairment draw rides a cross-LP hop); the combined plan runs
    // both at once so a crash lands while impaired replies are still in
    // flight. All must be byte-stable at any shards × threads point.
    let crash = builtin("crash").expect("builtin");
    let net = builtin("net").expect("builtin");
    let combined = "retry timeout=60ms backoff=2 max=10\n\
         crash server=1 at=120ms restart=80ms\n\
         net from=40ms until=400ms drop=0.05 delay=0.10 delay-by=3ms dup=0.03\n";
    for plan in [crash, net, combined] {
        for seed in [42u64, 7] {
            let baseline = fault_cell(plan, seed, 1, 1);
            for shards in [2, 8] {
                for threads in THREAD_COUNTS {
                    assert_eq!(
                        fault_cell(plan, seed, shards, threads),
                        baseline,
                        "seed={seed} shards={shards} threads={threads} diverged\nplan:\n{plan}"
                    );
                }
            }
        }
    }
}

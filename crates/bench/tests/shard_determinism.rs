//! Sharding the cluster into logical processes must not change any
//! simulated result. Event order under `ibridge_des::pdes` is keyed by
//! `(time, source node, per-node sequence)` — intrinsic to the simulated
//! system, not to the LP grouping — so `--shards N` may only change how
//! the calendar is stored, never what it dispatches. These tests run the
//! same job matrix at shard counts 1/2/8 (and across `--jobs` levels,
//! and under cross-LP fault plans) and require *identical* outputs — not
//! approximately equal.
//!
//! The fingerprint is the full `Debug` rendering of `RunStats`: Rust's
//! `f64` Debug format is shortest-roundtrip, so two renderings are equal
//! iff every float is bit-identical.

use ibridge_bench::runpar::par_map_jobs;
use ibridge_bench::{build, run_once, Scale, System, FILE_A};
use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_faults::{builtin, FaultPlan};
use ibridge_workloads::{CheckpointWorkload, MpiIoTest};

const KB: u64 = 1024;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn scale_with(seed: u64, shards: usize) -> Scale {
    Scale {
        stream_bytes: 16 << 20,
        seed,
        shards,
        ..Scale::quick()
    }
}

/// One cell of the matrix: a full-stats fingerprint of a run at the
/// given shard count. 8 servers so `--shards 8` really builds 8 LPs
/// (4 would silently clamp).
fn run_cell((seed, system, size, shards): (u64, System, u64, usize)) -> String {
    let scale = scale_with(seed, shards);
    let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 16, size, scale.stream_bytes);
    let span = w.span_bytes();
    let stats = run_once(system, 8, &scale, span, &mut w);
    format!("{stats:?}")
}

fn matrix(shards: usize) -> Vec<(u64, System, u64, usize)> {
    let mut jobs = Vec::new();
    for seed in [42u64, 7, 1234] {
        for system in [System::Stock, System::IBridge] {
            for size in [64 * KB, 65 * KB] {
                jobs.push((seed, system, size, shards));
            }
        }
    }
    jobs
}

#[test]
fn multi_seed_stats_identical_across_shard_counts() {
    let baseline: Vec<String> = matrix(1).into_iter().map(run_cell).collect();
    for shards in [2, 8] {
        let sharded: Vec<String> = matrix(shards).into_iter().map(run_cell).collect();
        assert_eq!(
            sharded, baseline,
            "shards={shards} changed simulated results"
        );
    }
}

#[test]
fn shard_identity_holds_at_any_jobs_level() {
    // The full shards × seeds × systems matrix through the worker pool
    // at two budgets: neither axis may perturb the other.
    let all: Vec<(u64, System, u64, usize)> =
        SHARD_COUNTS.iter().flat_map(|&s| matrix(s)).collect();
    let seq = par_map_jobs(1, all.clone(), run_cell);
    let par = par_map_jobs(8, all, run_cell);
    assert_eq!(seq, par, "--jobs changed results on a sharded cluster");
    // And within each jobs level, the shard axis itself must collapse:
    // every shard count's block equals the shards=1 block.
    let per_shards = seq.len() / SHARD_COUNTS.len();
    for (i, &shards) in SHARD_COUNTS.iter().enumerate().skip(1) {
        assert_eq!(
            seq[i * per_shards..(i + 1) * per_shards],
            seq[..per_shards],
            "shards={shards} diverged from shards=1"
        );
    }
}

/// The fault probe from the `faults` experiment: a checkpoint workload
/// long enough (hundreds of virtual milliseconds) that the builtin
/// plans' fault windows land mid-run.
fn fault_cell(plan_name: &str, seed: u64, shards: usize) -> String {
    let plan = FaultPlan::parse(builtin(plan_name).expect("builtin")).expect("parses");
    let scale = scale_with(seed, shards);
    let mut cluster = build(System::IBridge, 4, &scale);
    let mut w = CheckpointWorkload::new(
        FILE_A,
        4,
        1 << 20,
        60 * 1024,
        4,
        SimDuration::from_millis(25),
    );
    cluster.preallocate(FILE_A, w.span_bytes() + (1 << 20));
    cluster.set_fault_plan(&plan);
    let stats = cluster.run(&mut w);
    assert!(
        stats.faults.crashes > 0 || stats.faults.dropped_messages > 0,
        "{plan_name}: no fault landed — probe too short to exercise \
         cross-LP fault delivery"
    );
    format!("{stats:?}")
}

#[test]
fn fault_plans_identical_across_shard_counts() {
    // "crash" kills and restarts a server (crash teardown, drain kicks
    // and restart recovery all cross the LP boundary); "net" drops,
    // delays and duplicates messages on the client↔server links (every
    // impairment draw rides a cross-LP hop). Both must be byte-stable.
    for plan in ["crash", "net"] {
        for seed in [42u64, 7] {
            let baseline = fault_cell(plan, seed, 1);
            for shards in [2, 8] {
                assert_eq!(
                    fault_cell(plan, seed, shards),
                    baseline,
                    "plan={plan} seed={seed} shards={shards} diverged"
                );
            }
        }
    }
}

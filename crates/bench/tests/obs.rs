//! End-to-end observability guarantees:
//!
//! * the exported Chrome trace and the rendered metrics report are
//!   byte-identical at any worker count (fork-path merging, additive
//!   registries);
//! * turning observability on does not perturb any simulated result;
//! * the trace export is structurally valid JSON.
//!
//! Tests in this binary mutate process-global obs state, so they
//! serialise on one mutex (poison-tolerant: one failure must not
//! cascade).

use ibridge_bench::runpar::par_map_jobs;
use ibridge_bench::{experiments, obs_report, run_once, Scale, System, FILE_A};
use ibridge_device::IoDir;
use ibridge_obs::{metrics, trace};
use ibridge_workloads::MpiIoTest;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_scale(seed: u64) -> Scale {
    Scale {
        stream_bytes: 8 << 20,
        seed,
        ..Scale::quick()
    }
}

fn matrix() -> Vec<(u64, System)> {
    let mut jobs = Vec::new();
    for seed in [7u64, 19] {
        for system in [System::Stock, System::IBridge] {
            jobs.push((seed, system));
        }
    }
    jobs
}

fn run_job((seed, system): (u64, System)) -> (u64, u64, u64) {
    let scale = small_scale(seed);
    let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 8, 65 * 1024, scale.stream_bytes);
    let span = w.span_bytes();
    let stats = run_once(system, 4, &scale, span, &mut w);
    (
        stats.bytes,
        stats.elapsed.as_nanos(),
        stats.events_dispatched,
    )
}

/// Minimal structural JSON check (no serde in the workspace): balanced
/// brackets outside strings, no stray characters after the envelope.
fn check_json_shape(j: &str) {
    assert!(
        j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "missing envelope: {}",
        &j[..j.len().min(60)]
    );
    assert!(j.ends_with("]}\n"), "missing terminator");
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in j.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced brackets");
    }
    assert_eq!(depth, 0, "unbalanced brackets at end");
    assert!(!in_str, "unterminated string");
}

#[test]
fn trace_export_is_byte_identical_across_worker_counts() {
    let _g = lock();
    let export = |workers: usize| {
        trace::reset();
        ibridge_obs::set_tracing(true);
        let results = par_map_jobs(workers, matrix(), run_job);
        ibridge_obs::set_tracing(false);
        let t = trace::take_chunks();
        let count = t.span_count();
        (results, count, t.to_chrome_json())
    };
    let (r1, c1, j1) = export(1);
    let (r4, c4, j4) = export(4);
    trace::reset();
    assert_eq!(r1, r4, "worker count changed simulated results");
    assert_eq!(c1, c4, "worker count changed span count");
    assert_eq!(j1, j4, "worker count changed the exported trace");
    check_json_shape(&j1);
    // With the obs feature on (the default), a cluster run must produce
    // spans; span IDs inside the identical JSON are thereby proven
    // stable across worker counts.
    if cfg!(feature = "obs") {
        assert!(c1 > 0, "obs feature on but no spans recorded");
        assert!(j1.contains("\"name\":\"request\""));
        assert!(j1.contains("\"name\":\"srv:queue\""));
    }
}

#[test]
fn metrics_report_is_identical_across_worker_counts() {
    let _g = lock();
    let collect = |workers: usize| {
        metrics::reset();
        ibridge_obs::set_metrics(true);
        let _ = par_map_jobs(workers, matrix(), run_job);
        ibridge_obs::set_metrics(false);
        let snap = metrics::snapshot();
        metrics::reset();
        (obs_report::render(&snap), obs_report::json_fragment(&snap))
    };
    let (text1, json1) = collect(1);
    let (text4, json4) = collect(4);
    assert_eq!(text1, text4, "worker count changed the metrics report");
    assert_eq!(json1, json4, "worker count changed the metrics JSON");
    if cfg!(feature = "obs") {
        assert!(text1.contains("request"), "no request phase in: {text1}");
    }
}

#[test]
fn enabling_observability_does_not_change_results() {
    let _g = lock();
    trace::reset();
    metrics::reset();
    // Raw integer results across several seeds and both systems.
    let base = par_map_jobs(2, matrix(), run_job);
    ibridge_obs::set_tracing(true);
    ibridge_obs::set_metrics(true);
    let observed = par_map_jobs(2, matrix(), run_job);
    ibridge_obs::set_tracing(false);
    ibridge_obs::set_metrics(false);
    trace::reset();
    metrics::reset();
    assert_eq!(base, observed, "observability perturbed simulated results");

    // And a fully rendered experiment block, byte for byte.
    let scale = small_scale(42);
    let plain = experiments::fig2::fig2a(&scale);
    ibridge_obs::set_tracing(true);
    ibridge_obs::set_metrics(true);
    let traced = experiments::fig2::fig2a(&scale);
    ibridge_obs::set_tracing(false);
    ibridge_obs::set_metrics(false);
    trace::reset();
    metrics::reset();
    assert_eq!(plain, traced, "observability changed rendered output");
}

//! Host-parallelism must not change any simulated result: every cluster
//! run lives in its own virtual time, so `--jobs N` may only change the
//! wall clock. These tests run the same job matrix at different worker
//! counts and require *identical* outputs — not approximately equal.

use ibridge_bench::runpar::par_map_jobs;
use ibridge_bench::{experiments, run_once, Scale, System, FILE_A};
use ibridge_device::IoDir;
use ibridge_workloads::MpiIoTest;

const KB: u64 = 1024;

fn small_scale(seed: u64) -> Scale {
    Scale {
        stream_bytes: 16 << 20,
        seed,
        ..Scale::quick()
    }
}

fn matrix() -> Vec<(u64, System, u64)> {
    let mut jobs = Vec::new();
    for seed in [42u64, 7, 19] {
        for system in [System::Stock, System::IBridge] {
            for size in [64 * KB, 65 * KB] {
                jobs.push((seed, system, size));
            }
        }
    }
    jobs
}

fn run_job((seed, system, size): (u64, System, u64)) -> (u64, u64, u64) {
    let scale = small_scale(seed);
    let mut w = MpiIoTest::sized(IoDir::Write, FILE_A, 16, size, scale.stream_bytes);
    let span = w.span_bytes();
    let stats = run_once(system, 4, &scale, span, &mut w);
    // Exact integer fields: bytes moved, elapsed virtual nanoseconds,
    // events dispatched. Any scheduling leak between host threads would
    // perturb at least one of them.
    (
        stats.bytes,
        stats.elapsed.as_nanos(),
        stats.events_dispatched,
    )
}

#[test]
fn multi_seed_throughputs_identical_across_worker_counts() {
    let baseline = par_map_jobs(1, matrix(), run_job);
    for workers in [2, 8] {
        let par = par_map_jobs(workers, matrix(), run_job);
        assert_eq!(par, baseline, "workers={workers} changed simulated results");
    }
}

#[test]
fn rendered_experiment_is_byte_identical_across_worker_counts() {
    // Render a full experiment (its internal par_map uses the shared
    // token pool) at two budgets; the text must match byte for byte.
    // Runs in its own test binary, so set_jobs cannot race other tests.
    let scale = small_scale(42);
    ibridge_bench::runpar::set_jobs(1);
    let seq = experiments::fig2::fig2a(&scale);
    ibridge_bench::runpar::set_jobs(8);
    let par = experiments::fig2::fig2a(&scale);
    ibridge_bench::runpar::set_jobs(1);
    assert_eq!(seq, par, "fig2a output must not depend on --jobs");
}

//! A checkpoint/restart workload: alternating compute phases and
//! N-to-1 strided checkpoint bursts.
//!
//! Checkpointing is the canonical I/O pattern that failure studies
//! exercise: every process periodically dumps its state into a shared
//! checkpoint file, rank-interleaved, with record sizes set by the
//! application's data structures rather than the file system's stripe
//! unit — so almost every record is unaligned and splits into fragments
//! at the servers. Epochs overwrite the same offsets, which keeps a
//! recurring population of dirty data in the SSD log; that is exactly
//! the data at risk when a fault plan kills a cache device, making this
//! the probe workload for the `faults` experiment family.

use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};

/// Periodic compute + rank-strided checkpoint writes.
///
/// ```
/// use ibridge_workloads::CheckpointWorkload;
/// use ibridge_localfs::FileHandle;
///
/// let w = CheckpointWorkload::scaled(FileHandle(1), 4);
/// assert!(w.record % (64 * 1024) != 0, "records are unaligned");
/// assert!(w.span_bytes() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointWorkload {
    /// Shared checkpoint file.
    pub file: FileHandle,
    /// Process count.
    pub procs: usize,
    /// Checkpoint record size in bytes (deliberately not a multiple of
    /// the stripe unit in the defaults).
    pub record: u64,
    /// Number of checkpoint epochs.
    pub epochs: u64,
    /// Per-process compute time before each checkpoint burst.
    pub compute: SimDuration,
    records_per_epoch: u64,
}

impl CheckpointWorkload {
    /// Builds a run where each process writes `bytes_per_epoch` (rounded
    /// down to whole records, at least one) per epoch.
    pub fn new(
        file: FileHandle,
        procs: usize,
        bytes_per_epoch: u64,
        record: u64,
        epochs: u64,
        compute: SimDuration,
    ) -> Self {
        assert!(procs > 0 && record > 0 && epochs > 0);
        CheckpointWorkload {
            file,
            procs,
            record,
            epochs,
            compute,
            records_per_epoch: (bytes_per_epoch / record).max(1),
        }
    }

    /// A modest default shape: 1 MB per process per epoch in 60 KB
    /// records (unaligned against the 64 KB stripe unit), 4 epochs,
    /// 25 ms of compute between bursts.
    pub fn scaled(file: FileHandle, procs: usize) -> Self {
        CheckpointWorkload::new(
            file,
            procs,
            1 << 20,
            60 * 1024,
            4,
            SimDuration::from_millis(25),
        )
    }

    /// Records each process writes per epoch.
    pub fn records_per_epoch(&self) -> u64 {
        self.records_per_epoch
    }

    /// The logical file span touched (for preallocation). Epochs
    /// overwrite the same offsets, so the span is one epoch's worth.
    pub fn span_bytes(&self) -> u64 {
        self.records_per_epoch * self.procs as u64 * self.record
    }

    /// Total client bytes moved over the whole run.
    pub fn total_bytes(&self) -> u64 {
        self.span_bytes() * self.epochs
    }
}

impl Workload for CheckpointWorkload {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        let epoch = iter / self.records_per_epoch;
        if epoch >= self.epochs {
            return None;
        }
        let k = iter % self.records_per_epoch;
        // Rank-interleaved records: proc p owns every procs-th record.
        let offset = (k * self.procs as u64 + proc as u64) * self.record;
        Some(WorkItem {
            req: FileRequest {
                dir: IoDir::Write,
                file: self.file,
                offset,
                len: self.record,
            },
            think: if k == 0 {
                self.compute
            } else {
                SimDuration::ZERO
            },
        })
    }

    fn barrier(&self) -> bool {
        // Checkpoints are taken at global synchronisation points.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn offsets_are_disjoint_within_an_epoch_and_repeat_across_epochs() {
        let mut w =
            CheckpointWorkload::new(FileHandle(1), 4, 1 << 20, 60 * 1024, 3, SimDuration::ZERO);
        let rpe = w.records_per_epoch();
        let mut first_epoch = HashSet::new();
        for proc in 0..4 {
            for k in 0..rpe {
                let item = w.next(proc, k).expect("in range");
                assert!(item.req.dir.is_write());
                assert!(item.req.offset + item.req.len <= w.span_bytes());
                assert!(first_epoch.insert(item.req.offset), "overlap within epoch");
            }
        }
        // Epoch 2 rewrites exactly the same offsets.
        for proc in 0..4 {
            for k in 0..rpe {
                let item = w.next(proc, rpe + k).expect("in range");
                assert!(first_epoch.contains(&item.req.offset));
            }
        }
    }

    #[test]
    fn records_are_unaligned_to_the_stripe_unit() {
        let w = CheckpointWorkload::scaled(FileHandle(1), 4);
        assert_ne!(w.record % (64 * 1024), 0);
    }

    #[test]
    fn compute_precedes_each_burst_and_run_terminates() {
        let mut w = CheckpointWorkload::new(
            FileHandle(1),
            2,
            256 * 1024,
            60 * 1024,
            2,
            SimDuration::from_millis(9),
        );
        let rpe = w.records_per_epoch();
        assert_eq!(w.next(0, 0).unwrap().think, SimDuration::from_millis(9));
        assert_eq!(w.next(0, 1).unwrap().think, SimDuration::ZERO);
        assert_eq!(w.next(0, rpe).unwrap().think, SimDuration::from_millis(9));
        assert!(w.next(0, 2 * rpe).is_none());
        assert_eq!(w.total_bytes(), 2 * w.span_bytes());
    }

    #[test]
    fn tiny_bytes_per_epoch_still_writes_one_record() {
        let w = CheckpointWorkload::new(FileHandle(1), 2, 1, 4096, 1, SimDuration::ZERO);
        assert_eq!(w.records_per_epoch(), 1);
    }
}

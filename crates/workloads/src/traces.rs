//! Scientific-application I/O traces: ALEGRA, CTH and S3D.
//!
//! The paper replays traces from Sandia's Scalable I/O project. The
//! public trace archive is no longer available, so we synthesise traces
//! whose *statistics match what the paper reports*: the Table I
//! unaligned/random percentages (with a 64 KB striping unit and a 20 KB
//! random threshold), and S3D's markedly larger average request size
//! (its replayed service time is about twice the others', §III.E).
//!
//! Traces can be saved to / loaded from a simple line-oriented text
//! format (`R|W <offset> <len>`), and replayed by a single synchronous
//! process, exactly like the paper's replayer.

use ibridge_des::rng::{stream_rng, streams};
use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};
use rand::Rng;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Read or write.
    pub dir: IoDir,
    /// File offset in bytes.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Statistical profile of an application's I/O, tuned to Table I.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Fraction of requests that are large but unaligned.
    pub unaligned_frac: f64,
    /// Fraction of requests smaller than 20 KB ("random").
    pub random_frac: f64,
    /// Mean size of large (aligned or unaligned) requests, bytes.
    pub mean_large: u64,
    /// Fraction of write requests.
    pub write_frac: f64,
    /// Probability that a request continues where the previous ended.
    pub sequential_bias: f64,
}

impl AppProfile {
    /// ALEGRA shock/multiphysics run, 2744-cell mesh (Table I row 1).
    pub fn alegra_2744() -> Self {
        AppProfile {
            name: "ALEGRA-2744",
            unaligned_frac: 0.352,
            random_frac: 0.073,
            mean_large: 128 << 10,
            write_frac: 0.7,
            sequential_bias: 0.8,
        }
    }

    /// ALEGRA, 5832-cell mesh (Table I row 2).
    pub fn alegra_5832() -> Self {
        AppProfile {
            name: "ALEGRA-5832",
            unaligned_frac: 0.357,
            random_frac: 0.069,
            mean_large: 128 << 10,
            write_frac: 0.7,
            sequential_bias: 0.8,
        }
    }

    /// CTH shock physics (Table I row 3; random-heavy).
    pub fn cth() -> Self {
        AppProfile {
            name: "CTH",
            unaligned_frac: 0.243,
            random_frac: 0.301,
            mean_large: 96 << 10,
            write_frac: 0.6,
            sequential_bias: 0.7,
        }
    }

    /// S3D combustion simulation (Table I row 4; most unaligned, and
    /// the largest average request size).
    pub fn s3d() -> Self {
        AppProfile {
            name: "S3D",
            unaligned_frac: 0.628,
            random_frac: 0.058,
            mean_large: 256 << 10,
            write_frac: 0.8,
            sequential_bias: 0.85,
        }
    }

    /// The four Table I applications, in table order.
    pub fn table1() -> Vec<AppProfile> {
        vec![
            Self::alegra_2744(),
            Self::alegra_5832(),
            Self::cth(),
            Self::s3d(),
        ]
    }
}

/// A trace: an ordered list of requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The records, in replay order.
    pub records: Vec<TraceRecord>,
}

const SU: u64 = 64 << 10;

impl Trace {
    /// Synthesises `n` requests matching `profile`, confined to
    /// `[0, span)` (the paper restricts replay to 10 GB).
    pub fn synthesize(profile: &AppProfile, n: usize, span: u64, seed: u64) -> Trace {
        assert!(span >= 4 * (SU + profile.mean_large));
        let mut rng = stream_rng(seed, streams::TRACE);
        let mut records = Vec::with_capacity(n);
        let mut cursor: u64 = 0;
        for _ in 0..n {
            let dir = if rng.gen_bool(profile.write_frac) {
                IoDir::Write
            } else {
                IoDir::Read
            };
            let u: f64 = rng.gen();
            let (offset, len) = if u < profile.random_frac {
                // Random: < 20 KB, anywhere.
                let len = rng.gen_range(512..20 * 1024 - 512);
                let offset = rng.gen_range(0..span - len);
                (offset, len)
            } else if u < profile.random_frac + profile.unaligned_frac {
                // Unaligned: > one striping unit, edges off the grid.
                let spread = profile.mean_large / 2;
                let mut len = rng.gen_range(
                    (SU + 1024).max(profile.mean_large - spread)..profile.mean_large + spread,
                );
                if len % SU == 0 {
                    len += 1024;
                }
                let base = if rng.gen_bool(profile.sequential_bias) {
                    cursor
                } else {
                    rng.gen_range(0..span / SU) * SU
                };
                let shift = rng.gen_range(1..SU / 1024) * 1024;
                let offset = (base + shift) % (span - len);
                (offset, len)
            } else {
                // Aligned: multiple of the unit on a unit boundary.
                let units = (profile.mean_large / SU).max(1);
                let len = rng.gen_range(1..=units * 2) * SU;
                let base = if rng.gen_bool(profile.sequential_bias) {
                    cursor / SU * SU
                } else {
                    rng.gen_range(0..span / SU) * SU
                };
                let offset = base % (span - len) / SU * SU;
                (offset, len)
            };
            cursor = (offset + len) % (span / 2);
            records.push(TraceRecord { dir, offset, len });
        }
        Trace { records }
    }

    /// Total bytes moved by the trace.
    pub fn bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Largest offset+len touched (for preallocation).
    pub fn span(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.offset + r.len)
            .max()
            .unwrap_or(0)
    }

    /// Writes the trace in the text format (`R|W <offset> <len>`).
    pub fn save<W: Write>(&self, out: W) -> io::Result<()> {
        let mut w = BufWriter::new(out);
        for r in &self.records {
            let d = if r.dir.is_read() { 'R' } else { 'W' };
            writeln!(w, "{d} {} {}", r.offset, r.len)?;
        }
        w.flush()
    }

    /// Saves to a file path.
    pub fn save_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.save(std::fs::File::create(path)?)
    }

    /// Parses the text format.
    pub fn load<R: BufRead>(input: R) -> io::Result<Trace> {
        let mut records = Vec::new();
        for (no, line) in input.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let err = || {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad trace line {}: {line:?}", no + 1),
                )
            };
            let dir = match it.next().ok_or_else(err)? {
                "R" | "r" => IoDir::Read,
                "W" | "w" => IoDir::Write,
                _ => return Err(err()),
            };
            let offset = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let len = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            if len == 0 {
                return Err(err());
            }
            records.push(TraceRecord { dir, offset, len });
        }
        Ok(Trace { records })
    }

    /// Loads from a file path.
    pub fn load_path<P: AsRef<Path>>(path: P) -> io::Result<Trace> {
        Self::load(io::BufReader::new(std::fs::File::open(path)?))
    }
}

/// Replays a trace. The paper replays with a single synchronous process
/// (§III.E: the traces record offset and size but not the issuing
/// process); [`TraceReplay::with_procs`] additionally supports
/// round-robin multi-process replay to study the same trace under
/// concurrency.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    /// The trace to replay.
    pub trace: Trace,
    /// Target file.
    pub file: FileHandle,
    procs: usize,
}

impl TraceReplay {
    /// Creates a single-process replayer (the paper's method).
    pub fn new(trace: Trace, file: FileHandle) -> Self {
        TraceReplay {
            trace,
            file,
            procs: 1,
        }
    }

    /// Splits the records round-robin among `procs` synchronous
    /// processes.
    pub fn with_procs(mut self, procs: usize) -> Self {
        assert!(procs >= 1);
        self.procs = procs;
        self
    }
}

impl Workload for TraceReplay {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        let idx = iter as usize * self.procs + proc;
        let r = self.trace.records.get(idx)?;
        Some(WorkItem {
            req: FileRequest {
                dir: r.dir,
                file: self.file,
                offset: r.offset,
                len: r.len,
            },
            think: SimDuration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    #[test]
    fn synthesized_traces_match_table1_percentages() {
        for profile in AppProfile::table1() {
            let t = Trace::synthesize(&profile, 20_000, 1 << 30, 7);
            let c = classify(&t.records, SU, 20 * 1024);
            assert!(
                (c.random_pct - profile.random_frac * 100.0).abs() < 1.5,
                "{}: random {:.1} vs {:.1}",
                profile.name,
                c.random_pct,
                profile.random_frac * 100.0
            );
            assert!(
                (c.unaligned_pct - profile.unaligned_frac * 100.0).abs() < 1.5,
                "{}: unaligned {:.1} vs {:.1}",
                profile.name,
                c.unaligned_pct,
                profile.unaligned_frac * 100.0
            );
        }
    }

    #[test]
    fn s3d_requests_are_larger_on_average() {
        let s3d = Trace::synthesize(&AppProfile::s3d(), 5000, 1 << 30, 7);
        let alegra = Trace::synthesize(&AppProfile::alegra_2744(), 5000, 1 << 30, 7);
        let mean = |t: &Trace| t.bytes() as f64 / t.records.len() as f64;
        assert!(mean(&s3d) > 1.5 * mean(&alegra));
    }

    #[test]
    fn traces_stay_within_span() {
        let t = Trace::synthesize(&AppProfile::cth(), 5000, 1 << 28, 3);
        assert!(t.span() <= 1 << 28);
    }

    #[test]
    fn save_load_roundtrip() {
        let t = Trace::synthesize(&AppProfile::s3d(), 100, 1 << 28, 5);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Trace::load(io::Cursor::new(buf)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_garbage() {
        for bad in ["X 0 10", "R ten 10", "R 0", "R 0 0"] {
            assert!(
                Trace::load(io::Cursor::new(bad.as_bytes())).is_err(),
                "{bad}"
            );
        }
        // Comments and blank lines are fine.
        let ok = "# header\n\nR 0 512\n";
        assert_eq!(
            Trace::load(io::Cursor::new(ok.as_bytes()))
                .unwrap()
                .records
                .len(),
            1
        );
    }

    #[test]
    fn replay_walks_records_in_order() {
        let t = Trace {
            records: vec![
                TraceRecord {
                    dir: IoDir::Read,
                    offset: 0,
                    len: 512,
                },
                TraceRecord {
                    dir: IoDir::Write,
                    offset: 1024,
                    len: 256,
                },
            ],
        };
        let mut w = TraceReplay::new(t, FileHandle(9));
        assert_eq!(w.procs(), 1);
        assert_eq!(w.next(0, 0).unwrap().req.offset, 0);
        let second = w.next(0, 1).unwrap();
        assert_eq!(second.req.offset, 1024);
        assert!(second.req.dir.is_write());
        assert!(w.next(0, 2).is_none());
    }

    #[test]
    fn multi_proc_replay_partitions_the_records() {
        let t = Trace::synthesize(&AppProfile::alegra_2744(), 10, 1 << 28, 3);
        let mut w = TraceReplay::new(t.clone(), FileHandle(1)).with_procs(3);
        assert_eq!(w.procs(), 3);
        let mut replayed = Vec::new();
        for proc in 0..3 {
            let mut iter = 0;
            while let Some(item) = w.next(proc, iter) {
                replayed.push((item.req.offset, item.req.len));
                iter += 1;
            }
        }
        let mut expect: Vec<(u64, u64)> = t.records.iter().map(|r| (r.offset, r.len)).collect();
        replayed.sort_unstable();
        expect.sort_unstable();
        assert_eq!(replayed, expect, "every record replayed exactly once");
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let a = Trace::synthesize(&AppProfile::cth(), 500, 1 << 28, 11);
        let b = Trace::synthesize(&AppProfile::cth(), 500, 1 << 28, 11);
        let c = Trace::synthesize(&AppProfile::cth(), 500, 1 << 28, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! The `ior-mpi-io` benchmark (ASCI Purple suite).
//!
//! "A file is split into 64 chunks of equal size and each process is
//! responsible for sequentially reading or writing one data chunk using
//! requests whose sizes can be configured. However, because requests for
//! data at the same relative offset are issued concurrently by different
//! processes, the effective access pattern is random from the
//! perspective of a parallel file system."

use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};

/// The benchmark configuration.
#[derive(Debug, Clone)]
pub struct IorMpiIo {
    /// Read or write run.
    pub dir: IoDir,
    /// Target file.
    pub file: FileHandle,
    /// Process count (= chunk count).
    pub procs: usize,
    /// Request size in bytes.
    pub size: u64,
    /// Chunk size per process in bytes.
    pub chunk: u64,
}

impl IorMpiIo {
    /// Splits a `total_bytes` file among `procs` processes accessed in
    /// `size`-byte requests.
    pub fn sized(dir: IoDir, file: FileHandle, procs: usize, size: u64, total_bytes: u64) -> Self {
        assert!(size > 0 && procs > 0);
        let chunk = (total_bytes / procs as u64).max(size);
        IorMpiIo {
            dir,
            file,
            procs,
            size,
            chunk,
        }
    }

    /// Iterations per process.
    pub fn iters(&self) -> u64 {
        self.chunk / self.size
    }

    /// The logical file span touched (for preallocation).
    pub fn span_bytes(&self) -> u64 {
        self.chunk * self.procs as u64
    }
}

impl Workload for IorMpiIo {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        if iter >= self.iters() {
            return None;
        }
        let offset = proc as u64 * self.chunk + iter * self.size;
        Some(WorkItem {
            req: FileRequest {
                dir: self.dir,
                file: self.file,
                offset,
                len: self.size,
            },
            think: SimDuration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_process_walks_its_own_chunk() {
        let mut w = IorMpiIo::sized(IoDir::Read, FileHandle(1), 4, 1024, 16384);
        let chunk = w.chunk;
        assert_eq!(chunk, 4096);
        assert_eq!(w.next(0, 0).unwrap().req.offset, 0);
        assert_eq!(w.next(0, 1).unwrap().req.offset, 1024);
        assert_eq!(w.next(3, 0).unwrap().req.offset, 3 * chunk);
        assert_eq!(w.iters(), 4);
        assert!(w.next(0, 4).is_none());
    }

    #[test]
    fn same_iteration_offsets_are_chunk_strided() {
        // "requests for data at the same relative offset are issued
        // concurrently" — they are exactly one chunk apart.
        let mut w = IorMpiIo::sized(IoDir::Write, FileHandle(1), 8, 65 * 1024, 1 << 26);
        let o0 = w.next(0, 5).unwrap().req.offset;
        let o1 = w.next(1, 5).unwrap().req.offset;
        assert_eq!(o1 - o0, w.chunk);
    }

    #[test]
    fn span_covers_all_chunks() {
        let w = IorMpiIo::sized(IoDir::Read, FileHandle(1), 64, 33 * 1024, 1 << 28);
        assert_eq!(w.span_bytes(), w.chunk * 64);
    }
}

//! The `mpi-io-test` benchmark.
//!
//! "N processes iteratively read data from a 10GB file striped over
//! eight data servers. All read requests are of the same size s. At the
//! kth iteration Process i reads one segment of data at file offset
//! k*N*s + i*s." A configurable request offset shifts every access by a
//! constant (the paper's Pattern III / "+x KB" bars), and the barrier
//! between iterations can be enabled (Fig. 3) or removed (§III.B).

use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};

/// The benchmark configuration.
#[derive(Debug, Clone)]
pub struct MpiIoTest {
    /// Read or write run.
    pub dir: IoDir,
    /// Target file.
    pub file: FileHandle,
    /// Process count N.
    pub procs: usize,
    /// Request size s in bytes.
    pub size: u64,
    /// Iterations per process.
    pub iters: u64,
    /// Constant request offset in bytes (the "+x KB" patterns).
    pub shift: u64,
    /// Barrier between iterations (removed by default, as in §III.B).
    pub barrier: bool,
}

impl MpiIoTest {
    /// A run moving `total_bytes` in requests of `size` with `procs`
    /// processes (iterations derived; at least one).
    pub fn sized(dir: IoDir, file: FileHandle, procs: usize, size: u64, total_bytes: u64) -> Self {
        assert!(size > 0 && procs > 0);
        let iters = (total_bytes / (size * procs as u64)).max(1);
        MpiIoTest {
            dir,
            file,
            procs,
            size,
            iters,
            shift: 0,
            barrier: false,
        }
    }

    /// Adds a constant request offset (Pattern III).
    pub fn with_shift(mut self, shift: u64) -> Self {
        self.shift = shift;
        self
    }

    /// Enables the inter-iteration barrier.
    pub fn with_barrier(mut self) -> Self {
        self.barrier = true;
        self
    }

    /// The logical file span touched (for preallocation).
    pub fn span_bytes(&self) -> u64 {
        self.iters * self.procs as u64 * self.size + self.shift
    }
}

impl Workload for MpiIoTest {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        if iter >= self.iters {
            return None;
        }
        let offset = (iter * self.procs as u64 + proc as u64) * self.size + self.shift;
        Some(WorkItem {
            req: FileRequest {
                dir: self.dir,
                file: self.file,
                offset,
                len: self.size,
            },
            think: SimDuration::ZERO,
        })
    }

    fn barrier(&self) -> bool {
        self.barrier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_follow_the_paper_formula() {
        let mut w = MpiIoTest::sized(IoDir::Read, FileHandle(1), 4, 65536, 16 * 65536);
        assert_eq!(w.iters, 4);
        // Process 2, iteration 3: (3*4 + 2) * 64 KB.
        let item = w.next(2, 3).unwrap();
        assert_eq!(item.req.offset, 14 * 65536);
        assert!(w.next(0, 4).is_none());
    }

    #[test]
    fn shift_produces_pattern_iii() {
        let mut w =
            MpiIoTest::sized(IoDir::Read, FileHandle(1), 2, 65536, 4 * 65536).with_shift(10 * 1024);
        assert_eq!(w.next(0, 0).unwrap().req.offset, 10 * 1024);
        assert_eq!(w.next(1, 0).unwrap().req.offset, 65536 + 10 * 1024);
    }

    #[test]
    fn span_covers_all_accesses() {
        let w =
            MpiIoTest::sized(IoDir::Write, FileHandle(1), 8, 65 * 1024, 1 << 24).with_shift(1024);
        let mut max_end = 0;
        let mut w2 = w.clone();
        for proc in 0..w.procs {
            for iter in 0..w.iters {
                if let Some(item) = w2.next(proc, iter) {
                    max_end = max_end.max(item.req.offset + item.req.len);
                }
            }
        }
        assert!(w.span_bytes() >= max_end);
    }

    #[test]
    fn at_least_one_iteration() {
        let w = MpiIoTest::sized(IoDir::Read, FileHandle(1), 64, 65536, 1);
        assert_eq!(w.iters, 1);
    }
}

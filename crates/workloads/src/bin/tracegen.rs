//! Trace utility: synthesise application traces to files, and classify
//! existing trace files the way Table I does.
//!
//! ```text
//! tracegen gen s3d out.trace --requests 10000 --span-mb 1024 --seed 7
//! tracegen classify out.trace [--unit-kb 64] [--random-kb 20]
//! tracegen apps
//! ```

use ibridge_workloads::{classify, AppProfile, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("classify") => classify_cmd(&args[1..]),
        Some("apps") => {
            for p in AppProfile::table1() {
                println!(
                    "{:12} unaligned {:4.1}%  random {:4.1}%  mean-large {} KB",
                    p.name,
                    p.unaligned_frac * 100.0,
                    p.random_frac * 100.0,
                    p.mean_large >> 10
                );
            }
        }
        _ => die("usage: tracegen <gen|classify|apps> ... (see module docs)"),
    }
}

fn flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name} needs an integer")))
        })
        .unwrap_or(default)
}

fn gen(args: &[String]) {
    let (Some(app), Some(path)) = (args.first(), args.get(1)) else {
        die("usage: tracegen gen <app> <path> [--requests N] [--span-mb M] [--seed S]");
    };
    let profile = AppProfile::table1()
        .into_iter()
        .find(|p| {
            p.name.eq_ignore_ascii_case(app) || p.name.to_lowercase().contains(&app.to_lowercase())
        })
        .unwrap_or_else(|| die(&format!("unknown app {app:?}; see `tracegen apps`")));
    let requests = flag(args, "--requests", 10_000) as usize;
    let span = flag(args, "--span-mb", 1024) << 20;
    let seed = flag(args, "--seed", 42);
    let trace = Trace::synthesize(&profile, requests, span, seed);
    trace
        .save_path(path)
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    println!(
        "wrote {} requests ({:.1} MB of I/O) for {} to {path}",
        trace.records.len(),
        trace.bytes() as f64 / 1e6,
        profile.name
    );
}

fn classify_cmd(args: &[String]) {
    let Some(path) = args.first() else {
        die("usage: tracegen classify <path> [--unit-kb K] [--random-kb K]");
    };
    let unit = flag(args, "--unit-kb", 64) << 10;
    let random = flag(args, "--random-kb", 20) << 10;
    let trace = Trace::load_path(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let c = classify(&trace.records, unit, random);
    println!("requests  : {}", c.requests);
    println!("mean size : {:.1} KB", c.mean_size / 1024.0);
    println!("unaligned : {:.1}%", c.unaligned_pct);
    println!("random    : {:.1}%", c.random_pct);
    println!("total     : {:.1}%", c.total_pct);
}

fn die(msg: &str) -> ! {
    eprintln!("tracegen: {msg}");
    std::process::exit(2);
}

//! Two-phase collective I/O (ROMIO collective buffering).
//!
//! The paper's related work (§IV) notes that MPI-IO optimisations like
//! collective I/O rearrange accesses — and that even accesses that look
//! well-formed logically can end up unaligned on disk. Collective
//! buffering is *the* classic alternative to iBridge's server-side fix:
//! the processes exchange their pieces so that a few aggregator
//! processes issue large, stripe-aligned requests.
//!
//! [`CollectiveBuffering`] wraps an iteration-tiled access pattern (one
//! where iteration `k` of all `procs` compute processes covers the
//! contiguous range `[k*N*s, (k+1)*N*s)`, like `mpi-io-test`): per
//! iteration, the combined range is re-split among `aggregators` on
//! stripe-unit boundaries, and the data-exchange (shuffle) phase is
//! modelled as think time on the aggregators. Only the aggregators touch
//! the file system, so the simulated process set is the aggregator set;
//! the compute processes exist implicitly through `procs` (which sizes
//! each iteration's range) and `exchange` (which prices the shuffle).

use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};

/// Collective-buffering transformation of a tiled workload.
#[derive(Debug, Clone)]
pub struct CollectiveBuffering {
    /// Read or write run.
    pub dir: IoDir,
    /// Target file.
    pub file: FileHandle,
    /// Compute processes of the original program (sizes the iteration
    /// range; they do no I/O themselves).
    pub procs: usize,
    /// Aggregator processes performing the actual file I/O.
    pub aggregators: usize,
    /// Per-process request size of the original program.
    pub size: u64,
    /// Iterations.
    pub iters: u64,
    /// Stripe unit the aggregators align to.
    pub stripe_unit: u64,
    /// Modelled cost of the shuffle (data exchange) per iteration.
    pub exchange: SimDuration,
}

impl CollectiveBuffering {
    /// Wraps an `mpi-io-test`-shaped access pattern.
    pub fn new(
        dir: IoDir,
        file: FileHandle,
        procs: usize,
        aggregators: usize,
        size: u64,
        total_bytes: u64,
    ) -> Self {
        assert!(aggregators >= 1 && aggregators <= procs);
        let iters = (total_bytes / (size * procs as u64)).max(1);
        CollectiveBuffering {
            dir,
            file,
            procs,
            aggregators,
            size,
            iters,
            stripe_unit: 64 * 1024,
            exchange: SimDuration::from_micros(500),
        }
    }

    /// The logical file span touched.
    pub fn span_bytes(&self) -> u64 {
        self.iters * self.procs as u64 * self.size
    }

    /// The stripe-aligned slice aggregator `a` covers in iteration
    /// `iter`: `(offset, len)`, or `None` when the slice is empty.
    fn slice(&self, a: usize, iter: u64) -> Option<(u64, u64)> {
        let range_start = iter * self.procs as u64 * self.size;
        let range_end = range_start + self.procs as u64 * self.size;
        // Split [range_start, range_end) among aggregators on unit
        // boundaries.
        let su = self.stripe_unit;
        let first_unit = range_start / su;
        let last_unit = range_end.div_ceil(su);
        let units = last_unit - first_unit;
        let per = units.div_ceil(self.aggregators as u64);
        let my_first = first_unit + a as u64 * per;
        let my_last = (my_first + per).min(last_unit);
        if my_first >= my_last {
            return None;
        }
        let start = (my_first * su).max(range_start);
        let end = (my_last * su).min(range_end);
        (start < end).then_some((start, end - start))
    }
}

impl Workload for CollectiveBuffering {
    // In two-phase collective I/O only the aggregator subset touches the
    // file system, so the workload's I/O-issuing "process" count is the
    // aggregator count, not the compute-process count.
    #[allow(clippy::misnamed_getters)]
    fn procs(&self) -> usize {
        self.aggregators
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        if iter >= self.iters {
            return None;
        }
        let (offset, len) = self.slice(proc, iter).unwrap_or({
            // An empty slice still participates in the exchange; issue
            // the smallest legal request on the range start (the
            // aggregator's buffer metadata touch).
            (iter * self.procs as u64 * self.size, 1)
        });
        Some(WorkItem {
            req: FileRequest {
                dir: self.dir,
                file: self.file,
                offset,
                len,
            },
            think: self.exchange,
        })
    }

    fn barrier(&self) -> bool {
        // Two-phase I/O synchronises every iteration.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    fn cb(procs: usize, aggs: usize, size: u64, iters: u64) -> CollectiveBuffering {
        CollectiveBuffering {
            dir: IoDir::Write,
            file: FileHandle(1),
            procs,
            aggregators: aggs,
            size,
            iters,
            stripe_unit: 64 * KB,
            exchange: SimDuration::ZERO,
        }
    }

    #[test]
    fn aggregator_slices_tile_each_iteration() {
        let w = cb(16, 4, 65 * KB, 3);
        for iter in 0..3 {
            let range_start = iter * 16 * 65 * KB;
            let range_end = range_start + 16 * 65 * KB;
            let mut covered = 0;
            let mut cursor = None;
            for a in 0..4 {
                if let Some((o, l)) = w.slice(a, iter) {
                    if let Some(c) = cursor {
                        assert_eq!(o, c, "slices must be contiguous");
                    } else {
                        assert_eq!(o, range_start);
                    }
                    cursor = Some(o + l);
                    covered += l;
                }
            }
            assert_eq!(cursor, Some(range_end));
            assert_eq!(covered, range_end - range_start);
        }
    }

    #[test]
    fn interior_slice_edges_are_stripe_aligned() {
        let w = cb(16, 4, 65 * KB, 1);
        for a in 0..4 {
            if let Some((o, l)) = w.slice(a, 0) {
                if o != 0 {
                    assert_eq!(o % (64 * KB), 0, "aggregator {a} start");
                }
                let end = o + l;
                if end != 16 * 65 * KB {
                    assert_eq!(end % (64 * KB), 0, "aggregator {a} end");
                }
            }
        }
    }

    #[test]
    fn only_aggregators_are_simulated() {
        let w = cb(64, 4, 65 * KB, 2);
        assert_eq!(w.procs(), 4);
        assert!(w.barrier());
    }

    #[test]
    fn exchange_cost_attached_to_every_item() {
        let mut w = cb(8, 2, 65 * KB, 2);
        w.exchange = SimDuration::from_millis(1);
        assert_eq!(w.next(0, 0).unwrap().think, SimDuration::from_millis(1));
    }

    #[test]
    fn workload_terminates() {
        let mut w = cb(8, 2, 65 * KB, 2);
        assert!(w.next(0, 2).is_none());
    }
}

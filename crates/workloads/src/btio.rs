//! The NAS BTIO macro-benchmark (MPI-IO "simple" mode).
//!
//! BT solves the 3D compressible Navier–Stokes equations and appends its
//! solution to a shared file every few timesteps. In the paper's runs
//! (class C, 6.8 GB) the per-request size shrinks as the process count
//! grows — 2160 B at 9 processes down to 640 B at 100 — and "the program
//! generates random and very small I/O requests during execution", all
//! below the 20 KB threshold. Computation phases alternate with the
//! write phases, so total execution time mixes compute and I/O (the
//! paper reports I/O at 58 % of stock execution time, 4 % with iBridge).
//!
//! The model: `steps` phases; in each, every process computes for
//! `compute_per_step`, then writes its share of `data_bytes / steps` in
//! `request_size()`-byte records scattered over the file by a bijective
//! permutation (disjoint, deterministic, random-looking — the diagonal
//! BT decomposition).

use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};

/// BTIO workload model.
///
/// ```
/// use ibridge_workloads::Btio;
/// use ibridge_localfs::FileHandle;
/// use ibridge_des::SimDuration;
///
/// let b = Btio::new(FileHandle(1), 9, 1 << 20, 4, SimDuration::ZERO);
/// assert_eq!(b.request_size(), 2160); // the paper's 9-process size
/// assert!(b.span_bytes() <= 1 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct Btio {
    /// Target file.
    pub file: FileHandle,
    /// Process count (BT requires square numbers: 9, 16, 64, 100).
    pub procs: usize,
    /// Total bytes written over the run.
    pub data_bytes: u64,
    /// Number of solution-write phases.
    pub steps: u64,
    /// Per-process compute time before each write phase.
    pub compute_per_step: SimDuration,
    /// Read the solution back after the last write phase (BTIO's
    /// verification step). This is what makes the SSD cache capacity
    /// matter in Fig. 11: reads hit the cache only for data still in
    /// the log.
    pub verify: bool,
    reqs_per_step: u64,
    req_size: u64,
    slots: u64,
    multiplier: u64,
    verify_multiplier: u64,
}

impl Btio {
    /// Builds a BTIO run. `data_bytes` is rounded down so every process
    /// issues the same whole number of requests per step.
    pub fn new(
        file: FileHandle,
        procs: usize,
        data_bytes: u64,
        steps: u64,
        compute_per_step: SimDuration,
    ) -> Self {
        assert!(procs > 0 && steps > 0);
        let req_size = Self::request_size_for(procs);
        let reqs_per_step = (data_bytes / (procs as u64 * steps * req_size)).max(1);
        let slots = reqs_per_step * procs as u64 * steps;
        // Multipliers coprime with `slots` scatter the slot sequence
        // into bijective pseudo-random placements; the verification
        // phase uses a different permutation (BT reads the solution in
        // layout order, uncorrelated with write completion order).
        let mut multiplier = (slots as f64 * 0.618) as u64 | 1;
        while gcd(multiplier, slots) != 1 {
            multiplier += 2;
        }
        let mut verify_multiplier = (slots as f64 * 0.382) as u64 | 1;
        while gcd(verify_multiplier, slots) != 1 || verify_multiplier == multiplier {
            verify_multiplier += 2;
        }
        Btio {
            file,
            procs,
            data_bytes: slots * req_size,
            steps,
            compute_per_step,
            verify: true,
            reqs_per_step,
            req_size,
            slots,
            multiplier,
            verify_multiplier,
        }
    }

    /// Disables the verification read-back phase.
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    /// The paper's scaled-down default: 256 MB over 16 steps with 50 ms
    /// of compute per step (class C is 6.8 GB; the shape is preserved).
    pub fn scaled(file: FileHandle, procs: usize) -> Self {
        Btio::new(file, procs, 256 << 20, 16, SimDuration::from_millis(50))
    }

    /// Per-request size: ≈2160 B at 9 processes, ≈640 B at 100
    /// (`6480 / sqrt(procs)`, rounded up to 16 B).
    pub fn request_size_for(procs: usize) -> u64 {
        let raw = 6480.0 / (procs as f64).sqrt();
        ((raw / 16.0).round() as u64).max(1) * 16
    }

    /// This run's request size in bytes.
    pub fn request_size(&self) -> u64 {
        self.req_size
    }

    /// The logical file span touched (for preallocation).
    pub fn span_bytes(&self) -> u64 {
        self.slots * self.req_size
    }

    fn scatter(&self, linear: u64) -> u64 {
        (linear.wrapping_mul(self.multiplier)) % self.slots
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Workload for Btio {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        let writes = self.steps * self.reqs_per_step;
        let total = if self.verify { 2 * writes } else { writes };
        if iter >= total {
            return None;
        }
        if iter >= writes {
            // Verification phase: read records back in an order
            // uncorrelated with the write order.
            let k = iter - writes;
            let linear = k * self.procs as u64 + proc as u64;
            let offset = (linear.wrapping_mul(self.verify_multiplier) % self.slots) * self.req_size;
            return Some(WorkItem {
                req: FileRequest {
                    dir: IoDir::Read,
                    file: self.file,
                    offset,
                    len: self.req_size,
                },
                think: SimDuration::ZERO,
            });
        }
        let step = iter / self.reqs_per_step;
        let k = iter % self.reqs_per_step;
        let linear = (step * self.reqs_per_step + k) * self.procs as u64 + proc as u64;
        let offset = self.scatter(linear) * self.req_size;
        Some(WorkItem {
            req: FileRequest {
                dir: IoDir::Write,
                file: self.file,
                offset,
                len: self.req_size,
            },
            // Compute happens before the first write of each phase.
            think: if k == 0 {
                self.compute_per_step
            } else {
                SimDuration::ZERO
            },
        })
    }

    fn barrier(&self) -> bool {
        // BT's solver synchronises the processes each timestep.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn request_sizes_match_the_paper() {
        assert_eq!(Btio::request_size_for(9), 2160);
        let s100 = Btio::request_size_for(100);
        assert!((640..=656).contains(&s100), "{s100}");
        // Size shrinks monotonically with procs.
        assert!(Btio::request_size_for(16) > Btio::request_size_for(64));
    }

    #[test]
    fn all_requests_below_the_random_threshold() {
        for procs in [9, 16, 64, 100] {
            assert!(Btio::request_size_for(procs) < 20 * 1024);
        }
    }

    #[test]
    fn offsets_are_disjoint_and_cover_the_span() {
        let mut b = Btio::new(FileHandle(1), 9, 1 << 20, 4, SimDuration::ZERO);
        let mut seen = HashSet::new();
        let total_iters = b.steps * b.reqs_per_step;
        for proc in 0..9 {
            for iter in 0..total_iters {
                let item = b.next(proc, iter).expect("in range");
                assert_eq!(item.req.len, b.request_size());
                assert!(item.req.offset + item.req.len <= b.span_bytes());
                assert!(
                    seen.insert(item.req.offset),
                    "duplicate offset {}",
                    item.req.offset
                );
            }
        }
        assert_eq!(seen.len() as u64, b.slots);
    }

    #[test]
    fn offsets_are_scattered_not_sequential() {
        let mut b = Btio::new(FileHandle(1), 9, 1 << 20, 4, SimDuration::ZERO);
        let a = b.next(0, 0).unwrap().req.offset;
        let c = b.next(0, 1).unwrap().req.offset;
        let d = a.abs_diff(c);
        assert!(d > 10 * b.request_size(), "consecutive requests too close");
    }

    #[test]
    fn compute_precedes_each_phase() {
        let mut b = Btio::new(FileHandle(1), 9, 1 << 20, 4, SimDuration::from_millis(7));
        assert_eq!(b.next(0, 0).unwrap().think, SimDuration::from_millis(7));
        assert_eq!(b.next(0, 1).unwrap().think, SimDuration::ZERO);
        // First request of the second phase computes again.
        let r = b.reqs_per_step;
        assert_eq!(b.next(0, r).unwrap().think, SimDuration::from_millis(7));
    }

    #[test]
    fn workload_terminates() {
        let mut b = Btio::new(FileHandle(1), 9, 1 << 18, 2, SimDuration::ZERO).without_verify();
        let total = b.steps * b.reqs_per_step;
        assert!(b.next(0, total).is_none());
    }

    #[test]
    fn verification_reads_cover_exactly_the_written_offsets() {
        let mut b = Btio::new(FileHandle(1), 9, 1 << 18, 2, SimDuration::ZERO);
        let writes = b.steps * b.reqs_per_step;
        let mut written = HashSet::new();
        let mut read_back = HashSet::new();
        for proc in 0..9 {
            for iter in 0..writes {
                let w = b.next(proc, iter).unwrap();
                assert!(w.req.dir.is_write());
                written.insert(w.req.offset);
                let r = b.next(proc, writes + iter).unwrap();
                assert!(r.req.dir.is_read());
                read_back.insert(r.req.offset);
            }
            // The workload ends after both phases.
            assert!(b.next(proc, 2 * writes).is_none());
        }
        assert_eq!(written, read_back);
    }
}

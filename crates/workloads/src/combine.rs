//! Concurrent execution of two workloads (heterogeneous experiment,
//! Fig. 12: `mpi-io-test` writing one file while `BTIO` writes another).
//!
//! Processes `0..a.procs()` run workload `a`; the rest run `b`. Barriers
//! are intentionally not propagated: the two programs are independent.

use ibridge_pvfs::{WorkItem, Workload};

/// Two workloads sharing the cluster.
#[derive(Debug, Clone)]
pub struct CombinedWorkload<A, B> {
    /// First program (processes `0..a.procs()`).
    pub a: A,
    /// Second program (the remaining processes).
    pub b: B,
}

impl<A: Workload, B: Workload> CombinedWorkload<A, B> {
    /// Combines two workloads.
    pub fn new(a: A, b: B) -> Self {
        CombinedWorkload { a, b }
    }

    /// Process range of workload `a` (for per-group stats).
    pub fn a_procs(&self) -> std::ops::Range<usize> {
        0..self.a.procs()
    }

    /// Process range of workload `b`.
    pub fn b_procs(&self) -> std::ops::Range<usize> {
        self.a.procs()..self.a.procs() + self.b.procs()
    }
}

impl<A: Workload, B: Workload> Workload for CombinedWorkload<A, B> {
    fn procs(&self) -> usize {
        self.a.procs() + self.b.procs()
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        let a_procs = self.a.procs();
        if proc < a_procs {
            self.a.next(proc, iter)
        } else {
            self.b.next(proc - a_procs, iter)
        }
    }

    fn barrier(&self) -> bool {
        self.a.barrier() || self.b.barrier()
    }

    /// Each program's processes participate only in their own program's
    /// barrier; since the cluster has a single barrier, a program that
    /// does not use barriers is exempted entirely.
    fn in_barrier(&self, proc: usize) -> bool {
        let a_procs = self.a.procs();
        if proc < a_procs {
            self.a.barrier() && self.a.in_barrier(proc)
        } else {
            self.b.barrier() && self.b.in_barrier(proc - a_procs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ior::IorMpiIo;
    use crate::mpiiotest::MpiIoTest;
    use ibridge_device::IoDir;
    use ibridge_localfs::FileHandle;

    #[test]
    fn processes_route_to_their_program() {
        let a = MpiIoTest::sized(IoDir::Write, FileHandle(1), 4, 65536, 1 << 20);
        let b = IorMpiIo::sized(IoDir::Read, FileHandle(2), 2, 4096, 1 << 18);
        let mut c = CombinedWorkload::new(a, b);
        assert_eq!(c.procs(), 6);
        assert_eq!(c.a_procs(), 0..4);
        assert_eq!(c.b_procs(), 4..6);
        let from_a = c.next(0, 0).unwrap();
        assert_eq!(from_a.req.file, FileHandle(1));
        let from_b = c.next(4, 0).unwrap();
        assert_eq!(from_b.req.file, FileHandle(2));
        assert!(from_b.req.dir.is_read());
    }

    #[test]
    fn programs_finish_independently() {
        let a = MpiIoTest::sized(IoDir::Write, FileHandle(1), 1, 65536, 65536); // 1 iter
        let b = MpiIoTest::sized(IoDir::Write, FileHandle(2), 1, 65536, 4 * 65536); // 4 iters
        let mut c = CombinedWorkload::new(a, b);
        assert!(c.next(0, 1).is_none(), "program A is done");
        assert!(c.next(1, 3).is_some(), "program B still running");
    }
}

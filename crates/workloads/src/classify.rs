//! Request classification — regenerates **Table I**.
//!
//! The paper's definitions: *unaligned* requests are "larger than a
//! striping unit (64KB) but are not aligned to the striping unit
//! boundaries"; requests "smaller than 20KB are categorized as random".

use crate::traces::TraceRecord;

/// Classification percentages for a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// % of requests larger than the unit but unaligned.
    pub unaligned_pct: f64,
    /// % of requests below the random threshold.
    pub random_pct: f64,
    /// Unaligned + random (the paper's "Total" column).
    pub total_pct: f64,
    /// Number of requests classified.
    pub requests: usize,
    /// Mean request size in bytes.
    pub mean_size: f64,
}

/// Classifies `records` with striping unit `su` and random threshold
/// `random_below` (paper: 64 KB and 20 KB).
pub fn classify(records: &[TraceRecord], su: u64, random_below: u64) -> Classification {
    let n = records.len();
    if n == 0 {
        return Classification {
            unaligned_pct: 0.0,
            random_pct: 0.0,
            total_pct: 0.0,
            requests: 0,
            mean_size: 0.0,
        };
    }
    let mut unaligned = 0usize;
    let mut random = 0usize;
    let mut bytes = 0u64;
    for r in records {
        bytes += r.len;
        if r.len < random_below {
            random += 1;
        } else if r.len > su && (r.offset % su != 0 || (r.offset + r.len) % su != 0) {
            unaligned += 1;
        }
    }
    let pct = |x: usize| x as f64 * 100.0 / n as f64;
    Classification {
        unaligned_pct: pct(unaligned),
        random_pct: pct(random),
        total_pct: pct(unaligned + random),
        requests: n,
        mean_size: bytes as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibridge_device::IoDir;

    const KB: u64 = 1024;

    fn rec(offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            dir: IoDir::Read,
            offset,
            len,
        }
    }

    #[test]
    fn categories_follow_the_paper_definitions() {
        let records = vec![
            rec(0, 4 * KB),         // random (< 20 KB)
            rec(0, 64 * KB),        // aligned
            rec(0, 65 * KB),        // unaligned (end off-grid)
            rec(KB, 128 * KB),      // unaligned (start off-grid)
            rec(64 * KB, 128 * KB), // aligned
            rec(0, 32 * KB),        // neither: 20 KB..64 KB
        ];
        let c = classify(&records, 64 * KB, 20 * KB);
        assert_eq!(c.requests, 6);
        assert!((c.random_pct - 100.0 / 6.0).abs() < 1e-9);
        assert!((c.unaligned_pct - 200.0 / 6.0).abs() < 1e-9);
        assert!((c.total_pct - 300.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_cases() {
        // Exactly the threshold is NOT random; exactly one unit aligned
        // is NOT unaligned; one unit + offset IS unaligned only if
        // larger than a unit.
        let c = classify(&[rec(0, 20 * KB)], 64 * KB, 20 * KB);
        assert_eq!(c.random_pct, 0.0);
        let c = classify(&[rec(0, 64 * KB)], 64 * KB, 20 * KB);
        assert_eq!(c.unaligned_pct, 0.0);
        let c = classify(&[rec(KB, 64 * KB)], 64 * KB, 20 * KB);
        assert_eq!(c.unaligned_pct, 0.0, "not larger than a unit");
        let c = classify(&[rec(KB, 65 * KB)], 64 * KB, 20 * KB);
        assert_eq!(c.unaligned_pct, 100.0);
    }

    #[test]
    fn empty_trace() {
        let c = classify(&[], 64 * KB, 20 * KB);
        assert_eq!(c.requests, 0);
        assert_eq!(c.total_pct, 0.0);
    }

    #[test]
    fn mean_size_computed() {
        let c = classify(&[rec(0, KB), rec(0, 3 * KB)], 64 * KB, 20 * KB);
        assert!((c.mean_size - 2048.0).abs() < 1e-9);
    }
}

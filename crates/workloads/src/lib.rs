//! Workload models: the paper's MPI-IO benchmarks and scientific
//! application I/O traces.
//!
//! * [`mpiiotest`] — the PVFS2 `mpi-io-test` benchmark (§I.A and §III.B):
//!   N processes iteratively reading/writing a shared file with
//!   configurable request size, request offset ("+x KB" patterns) and
//!   optional barriers.
//! * [`ior`] — LLNL's `ior-mpi-io` (§III.C): the file is split into one
//!   chunk per process; each process reads/writes its chunk
//!   sequentially, which interleaves into random access at the servers.
//! * [`btio`] — the NAS BTIO macro-benchmark (§III.D): alternating
//!   compute phases and very small strided writes whose size shrinks as
//!   the process count grows.
//! * [`checkpoint`] — periodic compute + N-to-1 rank-strided unaligned
//!   checkpoint bursts; the probe workload for the fault-injection
//!   experiments (recurring dirty data in the SSD log).
//! * [`traces`] — synthetic ALEGRA/CTH/S3D traces matching the Table I
//!   request mix, a text trace format, and a single-process replayer
//!   (§III.E).
//! * [`mod@classify`] — the Table I classifier (unaligned/random
//!   percentages for a given striping unit).
//! * [`combine`] — runs two workloads concurrently against different
//!   files (the heterogeneous experiment of Fig. 12).

pub mod btio;
pub mod checkpoint;
pub mod classify;
pub mod collective;
pub mod combine;
pub mod ior;
pub mod mpiiotest;
pub mod sieving;
pub mod traces;

pub use btio::Btio;
pub use checkpoint::CheckpointWorkload;
pub use classify::{classify, Classification};
pub use collective::CollectiveBuffering;
pub use combine::CombinedWorkload;
pub use ior::IorMpiIo;
pub use mpiiotest::MpiIoTest;
pub use sieving::StridedAccess;
pub use traces::{AppProfile, Trace, TraceRecord, TraceReplay};

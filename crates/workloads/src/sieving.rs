//! Strided access with optional data sieving.
//!
//! Scientific codes often access many small, regularly strided pieces
//! per logical step (a row of a distributed matrix, one variable of an
//! interleaved record). ROMIO's *data sieving* (§IV, Thakur et al.)
//! turns a process's non-contiguous pieces into one large covering
//! request and extracts the wanted bytes in memory — trading wasted
//! transfer for far fewer I/O operations. As the paper notes, both the
//! sieved and unsieved forms can end up unaligned on the servers, which
//! is where iBridge picks up.
//!
//! [`StridedAccess`] models one such program: per iteration each process
//! touches `pieces` chunks of `piece` bytes at `stride` spacing inside
//! its own file region; with `sieve` enabled it issues a single covering
//! request instead.

use ibridge_des::SimDuration;
use ibridge_device::IoDir;
use ibridge_localfs::FileHandle;
use ibridge_pvfs::{FileRequest, WorkItem, Workload};

/// Strided per-process access, optionally sieved.
#[derive(Debug, Clone)]
pub struct StridedAccess {
    /// Read or write run.
    pub dir: IoDir,
    /// Target file.
    pub file: FileHandle,
    /// Process count.
    pub procs: usize,
    /// Pieces per logical iteration.
    pub pieces: u64,
    /// Bytes per piece.
    pub piece: u64,
    /// Distance between piece starts (≥ piece).
    pub stride: u64,
    /// Logical iterations per process.
    pub iters: u64,
    /// Issue one covering request per iteration instead of the pieces.
    pub sieve: bool,
}

impl StridedAccess {
    /// Bytes a process's iteration spans (the sieved request size).
    pub fn span_per_iter(&self) -> u64 {
        (self.pieces - 1) * self.stride + self.piece
    }

    /// Per-process region size.
    pub fn region(&self) -> u64 {
        self.iters * self.pieces * self.stride + self.piece
    }

    /// The logical file span touched (for preallocation).
    pub fn span_bytes(&self) -> u64 {
        self.region() * self.procs as u64
    }

    /// Useful bytes moved per process per iteration (the sieved variant
    /// transfers more than this).
    pub fn useful_bytes_per_iter(&self) -> u64 {
        self.pieces * self.piece
    }
}

impl Workload for StridedAccess {
    fn procs(&self) -> usize {
        self.procs
    }

    fn next(&mut self, proc: usize, iter: u64) -> Option<WorkItem> {
        assert!(self.pieces > 0 && self.piece > 0 && self.stride >= self.piece);
        let region_base = proc as u64 * self.region();
        if self.sieve {
            if iter >= self.iters {
                return None;
            }
            let offset = region_base + iter * self.pieces * self.stride;
            Some(WorkItem {
                req: FileRequest {
                    dir: self.dir,
                    file: self.file,
                    offset,
                    len: self.span_per_iter(),
                },
                think: SimDuration::ZERO,
            })
        } else {
            let total = self.iters * self.pieces;
            if iter >= total {
                return None;
            }
            let logical = iter / self.pieces;
            let k = iter % self.pieces;
            let offset = region_base + logical * self.pieces * self.stride + k * self.stride;
            Some(WorkItem {
                req: FileRequest {
                    dir: self.dir,
                    file: self.file,
                    offset,
                    len: self.piece,
                },
                think: SimDuration::ZERO,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    fn strided(sieve: bool) -> StridedAccess {
        StridedAccess {
            dir: IoDir::Read,
            file: FileHandle(1),
            procs: 2,
            pieces: 4,
            piece: 2 * KB,
            stride: 16 * KB,
            iters: 3,
            sieve,
        }
    }

    #[test]
    fn unsieved_issues_each_piece() {
        let mut w = strided(false);
        // Iteration 0 of proc 0: pieces at 0, 16K, 32K, 48K.
        for k in 0..4u64 {
            let item = w.next(0, k).unwrap();
            assert_eq!(item.req.offset, k * 16 * KB);
            assert_eq!(item.req.len, 2 * KB);
        }
        // Next logical iteration starts past the stride block.
        assert_eq!(w.next(0, 4).unwrap().req.offset, 64 * KB);
        assert!(w.next(0, 12).is_none());
    }

    #[test]
    fn sieved_issues_one_covering_request() {
        let mut w = strided(true);
        let item = w.next(0, 0).unwrap();
        assert_eq!(item.req.offset, 0);
        assert_eq!(item.req.len, 3 * 16 * KB + 2 * KB);
        assert!(w.next(0, 3).is_none());
    }

    #[test]
    fn processes_have_disjoint_regions() {
        let mut w = strided(false);
        let r = w.region();
        assert_eq!(w.next(1, 0).unwrap().req.offset, r);
        // No overlap: proc 0's last byte is below proc 1's first.
        let mut max0 = 0;
        for k in 0..12 {
            if let Some(i) = w.next(0, k) {
                max0 = max0.max(i.req.offset + i.req.len);
            }
        }
        assert!(max0 <= r);
    }

    #[test]
    fn sieving_moves_more_bytes_in_fewer_requests() {
        let w = strided(true);
        assert!(w.span_per_iter() > w.useful_bytes_per_iter());
        // 1 request vs `pieces` requests per iteration.
        assert_eq!(w.span_per_iter(), 50 * KB);
        assert_eq!(w.useful_bytes_per_iter(), 8 * KB);
    }
}
